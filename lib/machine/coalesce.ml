(* Per-destination aggregation of outgoing frames (the batching half of
   the paper's overhead-amortisation story, applied to the inter-node
   path). The module is a passive, deterministic state machine: the
   engine asks it what to do with each outgoing frame and tells it when
   flush triggers fire; all fabric and clock work stays in the engine.

   One buffer per (src, dst) channel. A frame offered to an empty buffer
   while the source injection port is idle *bypasses* aggregation — the
   wire is free, waiting could only add latency, and the single-message
   path stays bit-identical to the unbatched build (the Table-1 numbers).
   Aggregation engages exactly when frames are produced faster than the
   port drains them (send bursts, control-plane fan-out): the excess
   accumulates and leaves as one packet, paying one header and one
   hardware launch.

   Flush triggers, in the order they usually fire:
   - size: the buffer reached the byte or frame threshold (checked on
     append, so a threshold flush adds no waiting at all);
   - idle: the sending node ran out of work (the paper's poll-when-
     dormant moment — anything still buffered leaves before the node
     sleeps, so a batch of one flushes with zero added delay);
   - deadline: an age limit for buffers opened mid-slice on a node that
     keeps computing (bounds worst-case added latency);
   - ack: the reliable layer owed the peer a standalone ack and an open
     batch can carry it instead;
   - credit: a flush was blocked by flow control and a credit returned.

   Credits are per-channel: at most [credits] batches (or bypass
   singles) may be outstanding — flushed but not yet landed — per
   destination, so one hot channel cannot monopolise the injection port
   while others starve. A blocked flush parks ([starved]) and fires on
   the next credit return. *)

type config = {
  max_batch_bytes : int;
  max_batch_frames : int;
  max_delay_ns : int;
  credits : int;
}

let default_config =
  {
    max_batch_bytes = 512;
    max_batch_frames = 16;
    max_delay_ns = 5_000;
    credits = 4;
  }

type cause = Size | Idle | Deadline | Ack | Credit

let cause_name = function
  | Size -> "size"
  | Idle -> "idle"
  | Deadline -> "deadline"
  | Ack -> "ack"
  | Credit -> "credit"

type 'a chan = {
  mutable buf : 'a list;  (** newest first; reversed on take *)
  mutable frames : int;
  mutable bytes : int;  (** wire bytes incl. per-frame batch headers *)
  mutable opened : Simcore.Time.t;  (** first append of the current buffer *)
  mutable newest : Simcore.Time.t;  (** latest append (causality floor) *)
  mutable armed : bool;  (** a deadline event is in the engine queue *)
  mutable credit : int;
  mutable starved : bool;  (** a flush is waiting for a credit *)
  mutable listed : bool;  (** dst present in the per-src open list *)
}

type 'a t = {
  cfg : config;
  nodes : int;
  chans : (int, 'a chan) Hashtbl.t;  (** keyed by src * nodes + dst *)
  open_dsts_by_src : int list array;  (** dsts with (possibly) open buffers *)
  mutable total_buffered : int;
  (* statistics *)
  mutable batches : int;
  mutable singles : int;  (** bypass sends (batches of one, no waiting) *)
  mutable frames_sent : int;  (** frames shipped inside batches *)
  mutable riders : int;  (** piggybacked control AMs appended at flush *)
  mutable flush_size : int;
  mutable flush_idle : int;
  mutable flush_deadline : int;
  mutable flush_ack : int;
  mutable flush_credit : int;
  occupancy : Simcore.Histogram.t;  (** frames per batch *)
  node_batches : int array;
  node_singles : int array;
}

type stats = {
  s_batches : int;
  s_singles : int;
  s_frames : int;
  s_riders : int;
  s_flush_size : int;
  s_flush_idle : int;
  s_flush_deadline : int;
  s_flush_ack : int;
  s_flush_credit : int;
  s_buffered : int;
  s_occupancy : Simcore.Histogram.t;
  s_node_batches : int array;
  s_node_singles : int array;
}

let create ?(config = default_config) ~nodes () =
  if config.max_batch_frames < 2 then
    invalid_arg "Coalesce.create: max_batch_frames must be >= 2";
  if config.max_batch_bytes < 16 then
    invalid_arg "Coalesce.create: max_batch_bytes must be >= 16";
  if config.credits < 1 then invalid_arg "Coalesce.create: credits must be >= 1";
  if config.max_delay_ns < 1 then
    invalid_arg "Coalesce.create: max_delay_ns must be >= 1";
  {
    cfg = config;
    nodes;
    chans = Hashtbl.create 64;
    open_dsts_by_src = Array.make nodes [];
    total_buffered = 0;
    batches = 0;
    singles = 0;
    frames_sent = 0;
    riders = 0;
    flush_size = 0;
    flush_idle = 0;
    flush_deadline = 0;
    flush_ack = 0;
    flush_credit = 0;
    occupancy = Simcore.Histogram.create ~bucket_width:2 ();
    node_batches = Array.make nodes 0;
    node_singles = Array.make nodes 0;
  }

let config t = t.cfg

let chan_of t ~src ~dst =
  let k = (src * t.nodes) + dst in
  match Hashtbl.find_opt t.chans k with
  | Some ch -> ch
  | None ->
      let ch =
        {
          buf = [];
          frames = 0;
          bytes = 0;
          opened = 0;
          newest = 0;
          armed = false;
          credit = t.cfg.credits;
          starved = false;
          listed = false;
        }
      in
      Hashtbl.add t.chans k ch;
      ch

type verdict = [ `Bypass | `Opened | `Buffered | `Threshold ]

let offer t ~src ~dst ~now ~bytes ~port_free item : verdict =
  let ch = chan_of t ~src ~dst in
  if ch.frames = 0 && port_free && ch.credit > 0 then begin
    (* The wire is idle and nothing is queued: aggregation could only
       delay this frame. Send it alone, exactly as the unbatched build
       would (the caller uses the plain single-frame path). *)
    ch.credit <- ch.credit - 1;
    t.singles <- t.singles + 1;
    t.node_singles.(src) <- t.node_singles.(src) + 1;
    `Bypass
  end
  else begin
    ch.buf <- item :: ch.buf;
    ch.frames <- ch.frames + 1;
    ch.bytes <- ch.bytes + bytes;
    ch.newest <- max ch.newest now;
    t.total_buffered <- t.total_buffered + 1;
    if ch.frames = 1 then begin
      ch.opened <- now;
      if not ch.listed then begin
        ch.listed <- true;
        t.open_dsts_by_src.(src) <- dst :: t.open_dsts_by_src.(src)
      end
    end;
    if ch.frames >= t.cfg.max_batch_frames || ch.bytes >= t.cfg.max_batch_bytes
    then `Threshold
    else if ch.frames = 1 && not ch.armed then begin
      ch.armed <- true;
      `Opened
    end
    else `Buffered
  end

let take t ~src ~dst =
  let ch = chan_of t ~src ~dst in
  if ch.frames = 0 then None
  else if ch.credit = 0 then begin
    ch.starved <- true;
    None
  end
  else begin
    ch.credit <- ch.credit - 1;
    ch.starved <- false;
    let items = List.rev ch.buf in
    let bytes = ch.bytes and newest = ch.newest in
    t.total_buffered <- t.total_buffered - ch.frames;
    ch.buf <- [];
    ch.frames <- 0;
    ch.bytes <- 0;
    Some (items, bytes, newest)
  end

let note_batch t ~src ~frames ~riders ~cause =
  t.batches <- t.batches + 1;
  t.node_batches.(src) <- t.node_batches.(src) + 1;
  t.frames_sent <- t.frames_sent + frames;
  t.riders <- t.riders + riders;
  Simcore.Histogram.observe t.occupancy frames;
  match cause with
  | Size -> t.flush_size <- t.flush_size + 1
  | Idle -> t.flush_idle <- t.flush_idle + 1
  | Deadline -> t.flush_deadline <- t.flush_deadline + 1
  | Ack -> t.flush_ack <- t.flush_ack + 1
  | Credit -> t.flush_credit <- t.flush_credit + 1

let deadline_check t ~src ~dst ~now =
  let ch = chan_of t ~src ~dst in
  if ch.frames = 0 then begin
    ch.armed <- false;
    `Idle
  end
  else if now >= ch.opened + t.cfg.max_delay_ns then begin
    ch.armed <- false;
    `Flush
  end
  else begin
    (* The buffer the event was armed for already flushed and a fresh
       one opened since: follow the new buffer's age. *)
    `Rearm (ch.opened + t.cfg.max_delay_ns)
  end

let credit_return t ~src ~dst =
  let ch = chan_of t ~src ~dst in
  ch.credit <- min (ch.credit + 1) t.cfg.credits;
  if ch.starved && ch.frames > 0 then begin
    ch.starved <- false;
    `Flush
  end
  else begin
    ch.starved <- false;
    `Idle
  end

let has_open t ~src ~dst =
  match Hashtbl.find_opt t.chans ((src * t.nodes) + dst) with
  | Some ch -> ch.frames > 0
  | None -> false

(* Destinations with open buffers for [src], compacting the list (a dst
   flushed by deadline or threshold since it was listed drops out). *)
let open_dsts t ~src =
  let live, dead =
    List.partition (fun dst -> has_open t ~src ~dst) t.open_dsts_by_src.(src)
  in
  List.iter (fun dst -> (chan_of t ~src ~dst).listed <- false) dead;
  t.open_dsts_by_src.(src) <- live;
  live

let buffered t = t.total_buffered

(* Crash: the source NIC's aggregation buffers are volatile. Buffered
   frames are simply forgotten — under a fault plan they were sequenced
   into the reliable layer *before* being offered here, so the journaled
   retransmission buffer still owns them and the restarted node resends
   them from there. Credits refill (outstanding batches' credit-return
   events may still land later; [credit_return] clamps at the cap). *)
let reset_src t ~src =
  List.iter
    (fun dst ->
      match Hashtbl.find_opt t.chans ((src * t.nodes) + dst) with
      | None -> ()
      | Some ch ->
          t.total_buffered <- t.total_buffered - ch.frames;
          ch.buf <- [];
          ch.frames <- 0;
          ch.bytes <- 0;
          ch.armed <- false;
          ch.credit <- t.cfg.credits;
          ch.starved <- false;
          ch.listed <- false)
    t.open_dsts_by_src.(src);
  t.open_dsts_by_src.(src) <- [];
  (* Channels that were never listed (no open buffer) can still hold
     spent credits for in-flight singles; refill those too. *)
  Hashtbl.iter
    (fun k ch -> if k / t.nodes = src then ch.credit <- t.cfg.credits)
    t.chans

let stats t =
  {
    s_batches = t.batches;
    s_singles = t.singles;
    s_frames = t.frames_sent;
    s_riders = t.riders;
    s_flush_size = t.flush_size;
    s_flush_idle = t.flush_idle;
    s_flush_deadline = t.flush_deadline;
    s_flush_ack = t.flush_ack;
    s_flush_credit = t.flush_credit;
    s_buffered = t.total_buffered;
    s_occupancy = t.occupancy;
    s_node_batches = Array.copy t.node_batches;
    s_node_singles = Array.copy t.node_singles;
  }
