(* Per-destination aggregation of outgoing frames (the batching half of
   the paper's overhead-amortisation story, applied to the inter-node
   path). The module is a passive, deterministic state machine: the
   engine asks it what to do with each outgoing frame and tells it when
   flush triggers fire; all fabric and clock work stays in the engine.

   One buffer per (src, dst) channel. A frame offered to an empty buffer
   while the source injection port is idle *bypasses* aggregation — the
   wire is free, waiting could only add latency, and the single-message
   path stays bit-identical to the unbatched build (the Table-1 numbers).
   Aggregation engages exactly when frames are produced faster than the
   port drains them (send bursts, control-plane fan-out): the excess
   accumulates and leaves as one packet, paying one header and one
   hardware launch.

   Flush triggers, in the order they usually fire:
   - size: the buffer reached the byte or frame threshold (checked on
     append, so a threshold flush adds no waiting at all);
   - idle: the sending node ran out of work (the paper's poll-when-
     dormant moment — anything still buffered leaves before the node
     sleeps, so a batch of one flushes with zero added delay);
   - deadline: an age limit for buffers opened mid-slice on a node that
     keeps computing (bounds worst-case added latency);
   - ack: the reliable layer owed the peer a standalone ack and an open
     batch can carry it instead;
   - credit: a flush was blocked by flow control and a credit returned.

   Credits are per-channel: at most [credits] batches (or bypass
   singles) may be outstanding — flushed but not yet landed — per
   destination, so one hot channel cannot monopolise the injection port
   while others starve. A blocked flush parks ([starved]) and fires on
   the next credit return. *)

type config = {
  max_batch_bytes : int;
  max_batch_frames : int;
  max_delay_ns : int;
  credits : int;
}

let default_config =
  {
    max_batch_bytes = 512;
    max_batch_frames = 16;
    max_delay_ns = 5_000;
    credits = 4;
  }

type cause = Size | Idle | Deadline | Ack | Credit

let cause_name = function
  | Size -> "size"
  | Idle -> "idle"
  | Deadline -> "deadline"
  | Ack -> "ack"
  | Credit -> "credit"

type 'a chan = {
  mutable buf : 'a list;  (** newest first; reversed on take *)
  mutable frames : int;
  mutable bytes : int;  (** wire bytes incl. per-frame batch headers *)
  mutable opened : Simcore.Time.t;  (** first append of the current buffer *)
  mutable newest : Simcore.Time.t;  (** latest append (causality floor) *)
  mutable armed : bool;  (** a deadline event is in the engine queue *)
  mutable credit : int;
  mutable starved : bool;  (** a flush is waiting for a credit *)
  mutable listed : bool;  (** dst present in the per-src open list *)
}

(* Every counter below is per source node: a channel (and its buffer)
   belongs to the sending node, so in a parallel run each array slot has
   a single writing domain and the totals are summed on read. *)
type 'a t = {
  cfg : config;
  nodes : int;
  chans : 'a chan array;  (** indexed by src * nodes + dst, preallocated *)
  open_dsts_by_src : int list array;  (** dsts with (possibly) open buffers *)
  buffered_by_src : int array;
  (* statistics *)
  frames_by_src : int array;  (** frames shipped inside batches *)
  riders_by_src : int array;  (** piggybacked control AMs appended at flush *)
  flush_size_by_src : int array;
  flush_idle_by_src : int array;
  flush_deadline_by_src : int array;
  flush_ack_by_src : int array;
  flush_credit_by_src : int array;
  occupancy_by_src : Simcore.Histogram.t array;  (** frames per batch *)
  node_batches : int array;
  node_singles : int array;
}

type stats = {
  s_batches : int;
  s_singles : int;
  s_frames : int;
  s_riders : int;
  s_flush_size : int;
  s_flush_idle : int;
  s_flush_deadline : int;
  s_flush_ack : int;
  s_flush_credit : int;
  s_buffered : int;
  s_occupancy : Simcore.Histogram.t;
  s_node_batches : int array;
  s_node_singles : int array;
}

let create ?(config = default_config) ~nodes () =
  if config.max_batch_frames < 2 then
    invalid_arg "Coalesce.create: max_batch_frames must be >= 2";
  if config.max_batch_bytes < 16 then
    invalid_arg "Coalesce.create: max_batch_bytes must be >= 16";
  if config.credits < 1 then invalid_arg "Coalesce.create: credits must be >= 1";
  if config.max_delay_ns < 1 then
    invalid_arg "Coalesce.create: max_delay_ns must be >= 1";
  {
    cfg = config;
    nodes;
    chans =
      Array.init (nodes * nodes) (fun _ ->
          {
            buf = [];
            frames = 0;
            bytes = 0;
            opened = 0;
            newest = 0;
            armed = false;
            credit = config.credits;
            starved = false;
            listed = false;
          });
    open_dsts_by_src = Array.make nodes [];
    buffered_by_src = Array.make nodes 0;
    frames_by_src = Array.make nodes 0;
    riders_by_src = Array.make nodes 0;
    flush_size_by_src = Array.make nodes 0;
    flush_idle_by_src = Array.make nodes 0;
    flush_deadline_by_src = Array.make nodes 0;
    flush_ack_by_src = Array.make nodes 0;
    flush_credit_by_src = Array.make nodes 0;
    occupancy_by_src =
      Array.init nodes (fun _ -> Simcore.Histogram.create ~bucket_width:2 ());
    node_batches = Array.make nodes 0;
    node_singles = Array.make nodes 0;
  }

let config t = t.cfg
let chan_of t ~src ~dst = t.chans.((src * t.nodes) + dst)

type verdict = [ `Bypass | `Opened | `Buffered | `Threshold ]

let offer t ~src ~dst ~now ~bytes ~port_free item : verdict =
  let ch = chan_of t ~src ~dst in
  if ch.frames = 0 && port_free && ch.credit > 0 then begin
    (* The wire is idle and nothing is queued: aggregation could only
       delay this frame. Send it alone, exactly as the unbatched build
       would (the caller uses the plain single-frame path). *)
    ch.credit <- ch.credit - 1;
    t.node_singles.(src) <- t.node_singles.(src) + 1;
    `Bypass
  end
  else begin
    ch.buf <- item :: ch.buf;
    ch.frames <- ch.frames + 1;
    ch.bytes <- ch.bytes + bytes;
    ch.newest <- max ch.newest now;
    t.buffered_by_src.(src) <- t.buffered_by_src.(src) + 1;
    if ch.frames = 1 then begin
      ch.opened <- now;
      if not ch.listed then begin
        ch.listed <- true;
        t.open_dsts_by_src.(src) <- dst :: t.open_dsts_by_src.(src)
      end
    end;
    if ch.frames >= t.cfg.max_batch_frames || ch.bytes >= t.cfg.max_batch_bytes
    then `Threshold
    else if ch.frames = 1 && not ch.armed then begin
      ch.armed <- true;
      `Opened
    end
    else `Buffered
  end

let take t ~src ~dst =
  let ch = chan_of t ~src ~dst in
  if ch.frames = 0 then None
  else if ch.credit = 0 then begin
    ch.starved <- true;
    None
  end
  else begin
    ch.credit <- ch.credit - 1;
    ch.starved <- false;
    let items = List.rev ch.buf in
    let bytes = ch.bytes and newest = ch.newest in
    t.buffered_by_src.(src) <- t.buffered_by_src.(src) - ch.frames;
    ch.buf <- [];
    ch.frames <- 0;
    ch.bytes <- 0;
    Some (items, bytes, newest)
  end

let note_batch t ~src ~frames ~riders ~cause =
  t.node_batches.(src) <- t.node_batches.(src) + 1;
  t.frames_by_src.(src) <- t.frames_by_src.(src) + frames;
  t.riders_by_src.(src) <- t.riders_by_src.(src) + riders;
  Simcore.Histogram.observe t.occupancy_by_src.(src) frames;
  let bump a = a.(src) <- a.(src) + 1 in
  match cause with
  | Size -> bump t.flush_size_by_src
  | Idle -> bump t.flush_idle_by_src
  | Deadline -> bump t.flush_deadline_by_src
  | Ack -> bump t.flush_ack_by_src
  | Credit -> bump t.flush_credit_by_src

let deadline_check t ~src ~dst ~now =
  let ch = chan_of t ~src ~dst in
  if ch.frames = 0 then begin
    ch.armed <- false;
    `Idle
  end
  else if now >= ch.opened + t.cfg.max_delay_ns then begin
    ch.armed <- false;
    `Flush
  end
  else begin
    (* The buffer the event was armed for already flushed and a fresh
       one opened since: follow the new buffer's age. *)
    `Rearm (ch.opened + t.cfg.max_delay_ns)
  end

let credit_return t ~src ~dst =
  let ch = chan_of t ~src ~dst in
  ch.credit <- min (ch.credit + 1) t.cfg.credits;
  if ch.starved && ch.frames > 0 then begin
    ch.starved <- false;
    `Flush
  end
  else begin
    ch.starved <- false;
    `Idle
  end

let has_open t ~src ~dst = (chan_of t ~src ~dst).frames > 0

(* Destinations with open buffers for [src], compacting the list (a dst
   flushed by deadline or threshold since it was listed drops out). *)
let open_dsts t ~src =
  let live, dead =
    List.partition (fun dst -> has_open t ~src ~dst) t.open_dsts_by_src.(src)
  in
  List.iter (fun dst -> (chan_of t ~src ~dst).listed <- false) dead;
  t.open_dsts_by_src.(src) <- live;
  live

let buffered t = Array.fold_left ( + ) 0 t.buffered_by_src

(* Crash: the source NIC's aggregation buffers are volatile. Buffered
   frames are simply forgotten — under a fault plan they were sequenced
   into the reliable layer *before* being offered here, so the journaled
   retransmission buffer still owns them and the restarted node resends
   them from there. Credits refill (outstanding batches' credit-return
   events may still land later; [credit_return] clamps at the cap). *)
let reset_src t ~src =
  t.open_dsts_by_src.(src) <- [];
  t.buffered_by_src.(src) <- 0;
  (* Every channel of the crashed source: wipe open buffers, and refill
     credits even on channels that only hold spent credits for in-flight
     singles. *)
  for dst = 0 to t.nodes - 1 do
    let ch = t.chans.((src * t.nodes) + dst) in
    ch.buf <- [];
    ch.frames <- 0;
    ch.bytes <- 0;
    ch.armed <- false;
    ch.credit <- t.cfg.credits;
    ch.starved <- false;
    ch.listed <- false
  done

let stats t =
  let sum = Array.fold_left ( + ) 0 in
  let occupancy = Simcore.Histogram.create ~bucket_width:2 () in
  Array.iter
    (fun h -> Simcore.Histogram.merge_into ~into:occupancy h)
    t.occupancy_by_src;
  {
    s_batches = sum t.node_batches;
    s_singles = sum t.node_singles;
    s_frames = sum t.frames_by_src;
    s_riders = sum t.riders_by_src;
    s_flush_size = sum t.flush_size_by_src;
    s_flush_idle = sum t.flush_idle_by_src;
    s_flush_deadline = sum t.flush_deadline_by_src;
    s_flush_ack = sum t.flush_ack_by_src;
    s_flush_credit = sum t.flush_credit_by_src;
    s_buffered = sum t.buffered_by_src;
    s_occupancy = occupancy;
    s_node_batches = Array.copy t.node_batches;
    s_node_singles = Array.copy t.node_singles;
  }
