type config = {
  window : int;
  ack_delay_ns : int;
  rto_ns : int;
  backoff : int;
  max_rto_ns : int;
  max_retries : int;
}

let default_config =
  {
    window = 64;
    ack_delay_ns = 20_000;
    (* Initial value and floor of the adaptive estimate; the estimator
       learns the real ack round trip per channel — including
       injection-port queueing behind send bursts, which can reach
       millisecond scale — so a retransmission means the network actually
       lost something. *)
    rto_ns = 200_000;
    backoff = 2;
    max_rto_ns = 5_000_000;
    max_retries = 64;
  }

type frame = { fr_seq : int; fr_ack : int; fr_data : Am.t option }

(* One word of sequence number, one of cumulative ack. *)
let frame_bytes = 8

type tx = {
  mutable next_seq : int;
  mutable base : int;  (** lowest unacknowledged sequence number *)
  inflight : (int, Am.t * Simcore.Time.t * bool) Hashtbl.t;
      (** seq -> (message, eta, sample_ok). [eta] is the frame's
          estimated fault-free arrival at the peer — the push instant
          until {!note_eta} refines it with the fabric's answer, which
          accounts for injection-queueing behind send bursts. The
          retransmission deadline and RTT samples are anchored on it.
          [sample_ok] goes false once the frame is retransmitted: its
          ack is then ambiguous and yields no sample (Karn). *)
  backlog : Am.t Queue.t;
  mutable rto : int;
  mutable deadline : Simcore.Time.t;  (** when the base frame times out *)
  mutable timer_armed : bool;  (** a timer event is in the engine queue *)
  mutable retries : int;  (** consecutive retransmissions of [base] *)
  mutable srtt : int;  (** smoothed RTT estimate; -1 before any sample *)
  mutable rttvar : int;
}

type rx = {
  mutable expected : int;  (** next in-order sequence number *)
  reorder : (int, Am.t) Hashtbl.t;
  mutable ack_due : Simcore.Time.t;  (** pending standalone ack; max_int = none *)
}

(* Stable-store journal hooks: a recovery manager mirrors every
   sequence-state mutation into simulated stable storage the instant it
   happens (pessimistic logging), so a crashed node's channel registers
   are reconstructible. The protocol itself never reads the journal. *)
type journal = {
  j_sent : src:int -> dst:int -> seq:int -> Am.t -> unit;
  j_queued : src:int -> dst:int -> Am.t -> unit;
  j_acked : src:int -> dst:int -> base:int -> unit;
  j_released : src:int -> dst:int -> expected:int -> unit;
}

type t = {
  cfg : config;
  nodes : int;
  (* Channel state is preallocated for every (src, dst) pair rather than
     created lazily on first use: a parallel run then only ever mutates
     the per-channel records (each touched by a single domain — the
     tx side by the sender's, the rx side by the receiver's), never a
     shared table. *)
  txs : tx array;  (** indexed by src * nodes + dst *)
  rxs : rx array;  (** indexed by src * nodes + dst *)
  mutable journal : journal option;
  retransmits : int array;  (** per sending node *)
  dup_discards : int array;  (** per receiving node *)
  acks_sent : int array;  (** standalone acks, per sending node *)
  acks_piggybacked : int array;
      (** pending standalone acks cancelled because outgoing data (a
          frame or a flushed batch) carried the cumulative ack instead;
          per sending node *)
  rto_hist : Simcore.Histogram.t array;
}

let fresh_tx cfg =
  {
    next_seq = 0;
    base = 0;
    inflight = Hashtbl.create 8;
    backlog = Queue.create ();
    rto = cfg.rto_ns;
    deadline = max_int;
    timer_armed = false;
    retries = 0;
    srtt = -1;
    rttvar = 0;
  }

let fresh_rx () = { expected = 0; reorder = Hashtbl.create 8; ack_due = max_int }

let create ?(config = default_config) ~nodes () =
  if config.window < 1 then invalid_arg "Reliable.create: window must be >= 1";
  if config.backoff < 1 then invalid_arg "Reliable.create: backoff must be >= 1";
  {
    cfg = config;
    nodes;
    txs = Array.init (nodes * nodes) (fun _ -> fresh_tx config);
    rxs = Array.init (nodes * nodes) (fun _ -> fresh_rx ());
    journal = None;
    retransmits = Array.make nodes 0;
    dup_discards = Array.make nodes 0;
    acks_sent = Array.make nodes 0;
    acks_piggybacked = Array.make nodes 0;
    rto_hist = Array.init nodes (fun _ -> Simcore.Histogram.create ());
  }

let config t = t.cfg
let set_journal t j = t.journal <- j

let key t src dst = (src * t.nodes) + dst

let tx_of t ~src ~dst = t.txs.(key t src dst)
let rx_of t ~src ~dst = t.rxs.(key t src dst)

(* Cumulative ack the [me] side owes for traffic arriving from [peer].
   A pending standalone ack is suppressed only when the carrying frame
   reaches the wire no later than the ack deadline: a sending slice may
   run with its node clock far ahead of the frames it is acknowledging
   (optimistic per-node time), and cancelling the prompt standalone ack
   in favour of a far-future data frame would stall the peer's window
   into a spurious retransmission. *)
let take_piggyback t ~me ~peer ~now =
  let rx = rx_of t ~src:peer ~dst:me in
  if now <= rx.ack_due then begin
    if rx.ack_due <> max_int then
      t.acks_piggybacked.(me) <- t.acks_piggybacked.(me) + 1;
    rx.ack_due <- max_int
  end;
  rx.expected - 1

(* --- sender side --- *)

(* Adaptive retransmission timeout (RFC 6298 shape): smoothed RTT plus
   four deviations, floored at the configured initial RTO and capped at
   the backoff ceiling. Channels whose acks queue behind send bursts
   learn a proportionally lazier timer instead of retransmitting data
   the network never lost. *)
let current_rto t tx =
  if tx.srtt < 0 then t.cfg.rto_ns
  else
    min t.cfg.max_rto_ns (max t.cfg.rto_ns (tx.srtt + (4 * tx.rttvar)))

(* Observes the ack turnaround beyond the acked frame's arrival estimate
   (delayed-ack wait + return transit + jitter — the part the timeout
   must out-wait once the deadline is anchored on the eta). Returns
   whether a valid sample was taken: retransmitted frames are ambiguous
   and yield none (Karn). *)
let observe_rtt tx ~ack ~now =
  match Hashtbl.find_opt tx.inflight ack with
  | Some (_, eta, true) when now >= eta ->
      let rtt = now - eta in
      if tx.srtt < 0 then begin
        tx.srtt <- rtt;
        tx.rttvar <- rtt / 2
      end
      else begin
        tx.rttvar <- ((3 * tx.rttvar) + abs (tx.srtt - rtt)) / 4;
        tx.srtt <- ((7 * tx.srtt) + rtt) / 8
      end;
      true
  | _ -> false

(* Restart the timeout clock for the (new) base frame: its eta plus the
   current timeout, so time spent queueing at the source NIC is never
   counted against the network. *)
let rearm_for_base tx ~now =
  if Hashtbl.length tx.inflight = 0 then tx.deadline <- max_int
  else
    match Hashtbl.find_opt tx.inflight tx.base with
    | Some (_, eta, _) -> tx.deadline <- max eta now + tx.rto
    | None -> tx.deadline <- now + tx.rto

let push t ~src ~dst ~now am =
  let tx = tx_of t ~src ~dst in
  if Hashtbl.length tx.inflight >= t.cfg.window then begin
    Queue.push am tx.backlog;
    (match t.journal with Some j -> j.j_queued ~src ~dst am | None -> ());
    `Queued
  end
  else begin
    let seq = tx.next_seq in
    tx.next_seq <- seq + 1;
    Hashtbl.replace tx.inflight seq (am, now, true);
    (match t.journal with Some j -> j.j_sent ~src ~dst ~seq am | None -> ());
    (* First frame of an idle period: (re)start the timeout clock. The
       push instant stands in for the eta until {!note_eta} refines it. *)
    if tx.deadline = max_int then tx.deadline <- now + tx.rto;
    `Send { fr_seq = seq; fr_ack = take_piggyback t ~me:src ~peer:dst ~now; fr_data = Some am }
  end

let note_eta t ~src ~dst ~seq ~eta =
  let tx = tx_of t ~src ~dst in
  match Hashtbl.find_opt tx.inflight seq with
  | None -> () (* acked in the meantime — nothing left to time out *)
  | Some (am, _, ok) ->
      Hashtbl.replace tx.inflight seq (am, eta, ok);
      if seq = tx.base then begin
        let d = eta + tx.rto in
        if tx.deadline = max_int || d > tx.deadline then tx.deadline <- d
      end

let on_ack t ~src ~dst ~ack ~now =
  let tx = tx_of t ~src ~dst in
  if ack < tx.base then []
  else begin
    let sampled = observe_rtt tx ~ack ~now in
    for seq = tx.base to ack do
      Hashtbl.remove tx.inflight seq
    done;
    tx.base <- ack + 1;
    (match t.journal with
    | Some j -> j.j_acked ~src ~dst ~base:tx.base
    | None -> ());
    tx.retries <- 0;
    (* Progress restarts the timeout for the new oldest frame — but only
       a valid sample may relax a backed-off RTO (the second half of
       Karn's algorithm). While the floor sits below the channel's true
       round trip, every frame is retransmitted exactly once and every
       ack is ambiguous; keeping the doubled RTO lets a later frame
       survive to an unambiguous ack, which re-seeds the estimator. *)
    if sampled then tx.rto <- current_rto t tx;
    rearm_for_base tx ~now;
    (* Partial-ack recovery (NewReno shape): progress without a valid
       RTT sample means this ack answered a retransmission — the
       channel is recovering from loss, and under go-back-N the frames
       behind the repaired hole usually died with it (a crash window
       kills a whole flight). Waiting out the backed-off RTO for each
       one would drain the window at one frame per timeout; instead the
       ack clocks out the new base immediately, at the cost of one
       duplicate frame when the ack was merely late. *)
    let fast =
      if (not sampled) && Hashtbl.length tx.inflight > 0 then
        match Hashtbl.find_opt tx.inflight tx.base with
        | Some (am, _, _) ->
            Hashtbl.replace tx.inflight tx.base (am, now, false);
            t.retransmits.(src) <- t.retransmits.(src) + 1;
            Simcore.Histogram.observe t.rto_hist.(src) tx.rto;
            tx.deadline <- now + tx.rto;
            [
              {
                fr_seq = tx.base;
                fr_ack = take_piggyback t ~me:src ~peer:dst ~now;
                fr_data = Some am;
              };
            ]
        | None -> []
      else []
    in
    (* Release backlog into the freed window, in order. *)
    let rec drain acc =
      if Queue.is_empty tx.backlog || Hashtbl.length tx.inflight >= t.cfg.window
      then List.rev acc
      else begin
        let am = Queue.pop tx.backlog in
        let seq = tx.next_seq in
        tx.next_seq <- seq + 1;
        Hashtbl.replace tx.inflight seq (am, now, true);
        (match t.journal with
        | Some j -> j.j_sent ~src ~dst ~seq am
        | None -> ());
        if tx.deadline = max_int then tx.deadline <- now + tx.rto;
        drain
          ({ fr_seq = seq; fr_ack = take_piggyback t ~me:src ~peer:dst ~now; fr_data = Some am }
          :: acc)
      end
    in
    fast @ drain []
  end

let timer_request t ~src ~dst ~now =
  let tx = tx_of t ~src ~dst in
  if tx.timer_armed || Hashtbl.length tx.inflight = 0 then None
  else begin
    tx.timer_armed <- true;
    if tx.deadline = max_int then tx.deadline <- now + tx.rto;
    Some tx.deadline
  end

let on_timer t ~src ~dst ~now =
  let tx = tx_of t ~src ~dst in
  tx.timer_armed <- false;
  if Hashtbl.length tx.inflight = 0 then `Idle
  else if tx.deadline = max_int then begin
    (* Should not happen (push always stamps a deadline), but never
       schedule a timer at infinity. *)
    tx.deadline <- now + tx.rto;
    tx.timer_armed <- true;
    `Wait tx.deadline
  end
  else if now < tx.deadline then begin
    tx.timer_armed <- true;
    `Wait tx.deadline
  end
  else begin
    tx.retries <- tx.retries + 1;
    if tx.retries > t.cfg.max_retries then
      failwith
        (Printf.sprintf
           "Reliable: channel %d->%d gave up after %d retransmissions (seq %d)"
           src dst t.cfg.max_retries tx.base);
    let am =
      match Hashtbl.find_opt tx.inflight tx.base with
      | Some (am, _, _) -> am
      | None -> assert false (* base is unacked by definition *)
    in
    (* Karn's rule: a retransmitted frame can never yield an RTT sample
       (an eventual ack is ambiguous about which copy it answers). The
       caller's note_eta for the new copy re-anchors the deadline. *)
    Hashtbl.replace tx.inflight tx.base (am, now, false);
    t.retransmits.(src) <- t.retransmits.(src) + 1;
    Simcore.Histogram.observe t.rto_hist.(src) tx.rto;
    tx.rto <- min (tx.rto * t.cfg.backoff) t.cfg.max_rto_ns;
    tx.deadline <- now + tx.rto;
    tx.timer_armed <- true;
    ( `Retransmit
        ( {
            fr_seq = tx.base;
            fr_ack = take_piggyback t ~me:src ~peer:dst ~now;
            fr_data = Some am;
          },
          tx.deadline ) )
  end

(* --- receiver side --- *)

let on_data t ~src ~dst ~seq am =
  let rx = rx_of t ~src ~dst in
  if seq < rx.expected then begin
    t.dup_discards.(dst) <- t.dup_discards.(dst) + 1;
    `Duplicate
  end
  else if seq > rx.expected then
    if Hashtbl.mem rx.reorder seq then begin
      (* A duplicate of a frame already waiting in the reorder buffer. *)
      t.dup_discards.(dst) <- t.dup_discards.(dst) + 1;
      `Duplicate
    end
    else begin
      Hashtbl.add rx.reorder seq am;
      `Reordered
    end
  else begin
    rx.expected <- rx.expected + 1;
    let rec release acc =
      match Hashtbl.find_opt rx.reorder rx.expected with
      | Some am' ->
          Hashtbl.remove rx.reorder rx.expected;
          rx.expected <- rx.expected + 1;
          release (am' :: acc)
      | None -> List.rev acc
    in
    let ams = am :: release [] in
    (match t.journal with
    | Some j -> j.j_released ~src ~dst ~expected:rx.expected
    | None -> ());
    `Deliver ams
  end

let ack_needed t ~me ~peer ~now =
  let rx = rx_of t ~src:peer ~dst:me in
  if rx.ack_due <> max_int then None
  else begin
    rx.ack_due <- now + t.cfg.ack_delay_ns;
    Some rx.ack_due
  end

let on_ack_timer t ~me ~peer =
  let rx = rx_of t ~src:peer ~dst:me in
  if rx.ack_due = max_int then None
  else begin
    rx.ack_due <- max_int;
    t.acks_sent.(me) <- t.acks_sent.(me) + 1;
    Some { fr_seq = -1; fr_ack = rx.expected - 1; fr_data = None }
  end

(* --- introspection --- *)

let in_flight t =
  Array.fold_left
    (fun acc tx -> acc + Hashtbl.length tx.inflight + Queue.length tx.backlog)
    0 t.txs

let reorder_buffered t =
  Array.fold_left (fun acc rx -> acc + Hashtbl.length rx.reorder) 0 t.rxs

(* Only channels that carried traffic, in (src, dst) order — preallocated
   pristine channels are invisible, matching the old lazy table. *)
let channel_states t =
  let acc = ref [] in
  for key = Array.length t.txs - 1 downto 0 do
    let tx = t.txs.(key) in
    if
      tx.next_seq > 0 || tx.base > 0
      || Hashtbl.length tx.inflight > 0
      || Queue.length tx.backlog > 0
    then
      acc :=
        ( key / t.nodes,
          key mod t.nodes,
          tx.next_seq,
          tx.base,
          Hashtbl.length tx.inflight,
          Queue.length tx.backlog )
        :: !acc
  done;
  !acc

let rx_expected t ~src ~dst = t.rxs.(key t src dst).expected

let node_retransmits t node = t.retransmits.(node)
let node_dup_discards t node = t.dup_discards.(node)
let node_acks_sent t node = t.acks_sent.(node)
let node_acks_piggybacked t node = t.acks_piggybacked.(node)
let rto_histogram t node = t.rto_hist.(node)
