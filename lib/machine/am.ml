type payload = ..
type payload += Ping

type category = Object_message | Create_request | Chunk_reply | Service

type t = { handler : int; src : int; size_bytes : int; payload : payload }

let category_name = function
  | Object_message -> "object-message"
  | Create_request -> "create-request"
  | Chunk_reply -> "chunk-reply"
  | Service -> "service"
