type t = {
  ns_per_instr : int;
  check_locality : int;
  vft_lookup_call : int;
  switch_vft : int;
  check_message_queue : int;
  poll_remote : int;
  stack_adjust_return : int;
  frame_alloc : int;
  frame_store_per_word : int;
  mq_enqueue : int;
  mq_dequeue : int;
  sched_enqueue : int;
  sched_dequeue : int;
  context_save : int;
  context_restore : int;
  local_create : int;
  remote_create_request : int;
  create_init_handler : int;
  chunk_refill : int;
  msg_setup_send : int;
  msg_receive_handling : int;
  interrupt_overhead : int;
  reply_check : int;
  reliable_frame : int;
  reliable_ack : int;
  reliable_retransmit : int;
  migrate_freeze : int;
  migrate_install : int;
  migrate_forward : int;
  migrate_update : int;
  gc_sweep_obj : int;
  gc_reclaim : int;
  gc_dec_entry : int;
}

let default =
  {
    ns_per_instr = 92;
    (* Table 2 rows. *)
    check_locality = 3;
    vft_lookup_call = 5;
    switch_vft = 3;
    check_message_queue = 3;
    poll_remote = 5;
    stack_adjust_return = 3;
    (* Active-mode buffered path; calibrated so a one-word message to an
       active object totals ~104 instructions = 9.6 us (Section 6.1). *)
    frame_alloc = 20;
    frame_store_per_word = 2;
    mq_enqueue = 14;
    mq_dequeue = 8;
    sched_enqueue = 16;
    sched_dequeue = 20;
    context_save = 18;
    context_restore = 14;
    (* Creation: 23 instructions = 2.1 us (Table 1). *)
    local_create = 23;
    remote_create_request = 10;
    create_init_handler = 18;
    chunk_refill = 8;
    (* Inter-node (Section 6.1): ~20 to set up and send, ~50 to receive. *)
    msg_setup_send = 20;
    msg_receive_handling = 50;
    interrupt_overhead = 30;
    reply_check = 4;
    (* Reliable-delivery layer (charged only when a fault plan is live):
       sequence/ack bookkeeping per frame, a standalone ack send, and a
       timer-driven retransmission (lookup + re-send). *)
    reliable_frame = 6;
    reliable_ack = 12;
    reliable_retransmit = 28;
    (* Object migration (charged only when the subsystem is attached):
       freeze = safe-point check + state/frame serialisation setup (the
       per-word copy is charged separately, like frame_store_per_word);
       install = unpack + table swap on the target; forward = stub
       dispatch re-posting one message; update = retargeting a stub or
       location-cache entry from a migration notice. *)
    migrate_freeze = 40;
    migrate_install = 30;
    migrate_forward = 12;
    migrate_update = 6;
    gc_sweep_obj = 4;
    gc_reclaim = 10;
    gc_dec_entry = 3;
  }

let time c instructions = instructions * c.ns_per_instr

let dormant_send_instructions c =
  c.check_locality + c.vft_lookup_call + c.switch_vft + c.check_message_queue
  + c.switch_vft + c.poll_remote + c.stack_adjust_return

let pp ppf c =
  Format.fprintf ppf
    "@[<v>cost model: %d ns/instr@,dormant fast path: %d instr@]"
    c.ns_per_instr (dormant_send_instructions c)
