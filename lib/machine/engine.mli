(** The simulated multicomputer: nodes + torus fabric + discrete-event
    engine + active-message handler table.

    Execution model: the engine interleaves nodes one {e slice} at a time
    in virtual-timestamp order. A slice polls the node's ready inbox
    (dispatching each active message to its registered handler, which may
    run whole method cascades on the OCaml stack — the paper's stack-based
    scheduling), then runs at most one item from the node's scheduling
    queue. Polling also happens whenever the runtime explicitly calls
    {!poll} at method boundaries, matching the paper's polling-based
    message delivery. *)

type delivery_mode =
  | Polling  (** CM-5 / AP1000 style: arrival noticed at poll points *)
  | Interrupt  (** nCUBE/2 / iPSC/2 style: extra per-message overhead *)

type config = {
  cost : Cost_model.t;
  fabric : Network.Fabric.config;
  delivery : delivery_mode;
  seed : int;
  faults : Network.Faults.plan option;
      (** fault plan for the fabric. [None], or a plan for which
          {!Network.Faults.is_fault_free} holds, leaves the machine
          bit-identical to the fault-free build; any real fault activates
          the {!Reliable} delivery layer underneath the AM handlers. *)
  reliable : Reliable.config;  (** protocol tuning; used only with faults *)
  coalesce : Coalesce.config option;
      (** per-destination message aggregation. [None] (the default)
          leaves the send path bit-identical to the unbatched build.
          [Some _] buffers outgoing frames per destination and ships
          them as multi-frame packets — one routing header and one
          hardware launch per batch — flushing on a size threshold,
          scheduler idle, an age deadline, or a pending-ack deadline,
          under per-channel credit flow control. Composes with the
          fault layer: under a fault plan whole batches share a fate
          and the reliable protocol re-sequences their frames. *)
}

val default_config : config

type t

val create : ?config:config -> nodes:int -> unit -> t
(** Builds a machine whose torus is [Topology.square_for nodes]. *)

val config : t -> config
val cost : t -> Cost_model.t
val topology : t -> Network.Topology.t
val stats : t -> Simcore.Stats.t
val rng : t -> Simcore.Rng.t
val node_count : t -> int
val node : t -> int -> Node.t
val nodes : t -> Node.t array

val charge : t -> Node.t -> int -> unit
(** [charge t n instructions] advances [n]'s clock per the cost model. *)

(** {2 Active messages} *)

val register_handler :
  t -> Am.category -> name:string -> (t -> Node.t -> Am.t -> unit) -> int
(** Registers a self-dispatching handler; returns its id to embed in
    messages. The handler runs on the destination node when the message
    is polled. *)

val send_am :
  t -> src:Node.t -> dst:int -> handler:int -> size_bytes:int -> Am.payload -> unit
(** Injects a message into the fabric at the source node's current time.
    Does {e not} charge the sender's setup instructions — the runtime
    charges those explicitly so benches can account for them. *)

val poll : t -> Node.t -> unit
(** Dispatches every inbox message that has already arrived, charging
    receive handling (plus interrupt overhead in [Interrupt] mode) per
    message. *)

val interrupt_point : t -> Node.t -> unit
(** In [Interrupt] delivery mode, takes any pending message now (unless
    interrupts are masked). The runtime places these points at user-level
    computation and send boundaries; runtime bookkeeping between them is
    implicitly a masked critical section. No-op under [Polling]. *)

(** {2 Work scheduling} *)

val post : t -> Node.t -> (unit -> unit) -> unit
(** Pushes a thunk onto the node's scheduling queue and wakes the node.
    This is how the runtime enqueues "(object, continuation address)"
    items, and how programs bootstrap initial work. A down node refuses
    the work — the thunk is discarded and counted under
    ["recover.posts_refused"]; resubmit after the restart if it must
    survive. *)

val schedule_at : t -> time:Simcore.Time.t -> (unit -> unit) -> unit
(** Arms an engine-level timer: the thunk runs when the virtual clock
    reaches [time] (clamped to now). Periodic services re-arm from
    inside the thunk — but should first consult {!quiescent} so a
    finished run still drains its event queue and {!run} returns. *)

val schedule_on :
  t -> node:int -> time:Simcore.Time.t -> (unit -> unit) -> unit
(** Like {!schedule_at}, but the timer belongs to [node]: a parallel run
    executes it on the domain that owns the node (and the thunk may only
    touch that node). Sequentially identical to {!schedule_at}. *)

val quiescent : t -> bool
(** Every node idle, no reliable-delivery traffic outstanding and no
    aggregation buffer still open: the machine would stop if no timer
    re-armed. *)

(** {2 Running} *)

(** {2 Observation} *)

type observation =
  | Obs_deliver of { time : Simcore.Time.t; src : int; dst : int }
      (** a packet reached its destination node *)
  | Obs_slice of { node : int; t_start : Simcore.Time.t; t_end : Simcore.Time.t }
      (** one execution slice of a node that advanced its clock *)
  | Obs_batch of { time : Simcore.Time.t; src : int; dst : int; frames : int }
      (** an aggregated multi-frame packet reached its destination *)
  | Obs_crash of { time : Simcore.Time.t; node : int; incarnation : int }
      (** [node]'s incarnation [incarnation] died *)
  | Obs_restart of { time : Simcore.Time.t; node : int; incarnation : int }
      (** [node] came back as (new) incarnation [incarnation] *)

val set_observer : t -> (observation -> unit) option -> unit
(** Streams engine events to a callback (timeline tools, tracing).
    [None] detaches. *)

val run : ?max_slices:int -> t -> unit
(** Processes events until the machine quiesces (no pending events).
    Raises [Failure] if [max_slices] is exceeded — a backstop against
    livelocked programs. *)

val run_parallel : ?max_slices:int -> t -> domains:int -> unit -> unit
(** Like {!run}, but shards the nodes across [domains] OCaml domains
    (clamped to the node count), each driving its own event queue, and
    synchronises them with a conservative lookahead barrier: every
    domain executes all events below [global_min + lookahead] per round,
    where the lookahead is {!Network.Fabric.min_remote_latency} — the
    guaranteed minimum timestamp increment of any cross-node message.
    Cross-node deliveries defer to the next round boundary and apply in
    canonical (arrival, source node, per-source seq) order, so the run —
    including the Timeline observation stream, replayed in canonical
    merged order at the end — is bit-identical for {e any} [domains],
    including 1. ([run_parallel ~domains:1] is {e not} byte-identical to
    {!run}: the sequential engine interleaves observations and inbox
    insertions in pop order rather than boundary order. Compare parallel
    runs with parallel runs.)

    Fault plans, coalescing and recovery hooks are all accepted: fault
    fates come from per-channel streams owned by the sending node's
    domain, open aggregation buffers are node-local (flush triggers ride
    the owning domain's window, and framed batches cross domains through
    the boundary mailboxes with whole-batch fate preserved), and
    checkpoint/restart timers are node-owned events. Still sequential-
    only: fabric contention (a shared link-occupancy table), nodes
    already down at call time, and the global decision / tie-break hooks
    (use {!set_node_decision_source}); raises [Invalid_argument] for
    those — and a rejected call is side-effect-free, leaving the engine
    exactly as it was. [max_slices] bounds the total slice count across
    all domains, checked once per round.

    Raises {!Lookahead_violation} if a cross-node effect lands inside
    the current window — only possible with a fabric config whose
    {!Network.Fabric.min_remote_latency} understates a real path (e.g. a
    pathological [bytes_per_us] that makes a mid-batch frame outrun a
    bare header). *)

exception
  Lookahead_violation of {
    domain : int;  (** the shard that produced the violating effect *)
    node : int;  (** the sending node *)
    arrival : Simcore.Time.t;
    horizon : Simcore.Time.t;  (** end of the window it should have cleared *)
  }
(** Raised (out of {!run_parallel}, propagated from the violating
    domain) when the conservative-lookahead invariant breaks. *)

val events_processed : t -> int
(** Events executed so far by {!run} and {!run_parallel} together — the
    numerator of a host-side events-per-second figure. *)

val lookahead_ns : t -> Simcore.Time.t
(** The conservative lookahead {!run_parallel} uses: the fabric's
    minimum cross-node latency. *)

val now : t -> Simcore.Time.t
(** Timestamp of the most recently processed event. Domain-local during
    a parallel run: inside an event handler it equals that event's time
    (count-invariant); between events it is the calling domain's own
    cursor, so boundary-phase code must not treat it as global. *)

val elapsed : t -> Simcore.Time.t
(** Makespan: the maximum node clock. *)

val total_busy : t -> Simcore.Time.t
(** Sum over nodes of busy (execution) time. *)

val utilization : t -> float
(** [total_busy / (elapsed * node_count)], in [0, 1]. *)

val packets_sent : t -> int
val bytes_sent : t -> int

(** {2 Fault model} *)

val faults_active : t -> bool
(** True iff a non-trivial fault plan (and with it the reliable-delivery
    layer) is live on this machine. *)

val reliable : t -> Reliable.t option
(** The reliable-delivery protocol state, for degradation reports. *)

val reliable_in_flight : t -> int
(** Messages sent but not yet acknowledged (0 when faults are off). A
    quiescent machine with a nonzero count lost messages for good. *)

val packets_dropped : t -> int
(** Packets the fault layer destroyed (including crash-window losses). *)

val packets_duplicated : t -> int

val dropped_by_src : t -> int -> int
val duplicated_by_src : t -> int -> int

val faults_state : t -> Network.Faults.t option
(** The fabric's live fault state: the recovery manager re-times crash
    windows through it ({!Network.Faults.set_crashes}) before traffic
    starts, so crash instants replay from the recorded choice vector. *)

(** {2 Crash and recovery}

    The engine provides the {e mechanism}: a node can be killed (losing
    all volatile state — inbox, run queue, open aggregation buffers)
    and later restarted as a new incarnation. The {e policy} — stable
    storage, checkpointing, log replay, rebuilding the inbox — lives in
    the [Recover] library, which drives these entry points and installs
    {!recovery_hooks} to see every delivery, dispatch and send. While a
    node is down it processes no events: its wakes are discarded,
    frames addressed to it are dropped (counted under the
    ["recover.dropped_while_down"] stat), and its reliable-protocol
    timers are deferred past the restart instant rather than consumed. *)

type recovery_hooks = {
  rc_deliver : dst:int -> arrival:Simcore.Time.t -> Am.t -> unit;
      (** a message landed in [dst]'s inbox *)
  rc_dispatch : node:int -> Am.t -> unit;
      (** a message is about to run its handler on [node] *)
  rc_send : src:int -> bool;
      (** consulted before every {!send_am} from [src]; returning
          [false] swallows the send (used during log replay, when the
          original send's effects are already journaled) *)
}

val set_recovery_hooks : t -> recovery_hooks option -> unit

val crash_node : t -> int -> restart_at:Simcore.Time.t -> unit
(** Kills the node now: wipes its volatile state ({!Node.crash_reset}),
    resets its open aggregation buffers, and marks it down until
    [restart_at] (protocol timers are parked just past that instant).
    The node's clock survives — it is the engine's virtual-time cursor.
    Raises [Invalid_argument] if the node is already down or
    [restart_at] is not in the future. *)

val restart_node : t -> int -> unit
(** Brings a down node back as a fresh incarnation and wakes it so it
    polls whatever the recovery manager rebuilt into its inbox. The
    manager restores state {e before} calling this. *)

val redispatch : t -> node:int -> Am.t -> unit
(** Runs a message's handler again on the (restarted) node, charged and
    observed exactly like the original dispatch. Log replay only. *)

val node_down : t -> int -> bool
val node_incarnation : t -> int -> int
(** Restart count of the node (0 = original incarnation). *)

val node_crash_count : t -> int -> int

val crash_dropped : t -> int
(** Packets lost to crash windows (vs. random drops); see
    {!Network.Fabric.crash_dropped}. *)

val crash_dropped_by_node : t -> int -> int
(** Crash losses attributed to the given crashed endpoint. *)

(** {2 Message aggregation} *)

val coalesce_active : t -> bool
(** True iff the per-destination aggregation layer is live. *)

val coalesce_buffered : t -> int
(** Frames currently parked in open aggregation buffers (0 when
    aggregation is off, and at clean quiescence). *)

val coalesce_stats : t -> Coalesce.stats option

val set_piggyback_source : t -> (src:int -> dst:int -> Am.t list) option -> unit
(** Registers the flush-time piggyback hook: when a batch from [src] to
    [dst] is about to leave, the hook may return control messages (e.g.
    distributed-GC decrements) to append to it — riding an already-paid
    routing header and launch. The hook must return messages whose
    [Am.src] is [src]; under a fault plan they enter the reliable
    channel's sequenced window like ordinary sends. [None] detaches. *)

(** {2 Schedule exploration} *)

val set_decision_source : t -> (string -> int -> int) option -> unit
(** Registers the schedule-exploration decision hook: at each named
    decision point the engine calls [decide tag bound] and acts on the
    returned value in [[0, bound)]. A return of 0 — and [None], the
    default — is the unperturbed baseline behavior. Current decision
    points: ["co.flush.delay"] (extra delay before an aggregation
    deadline check fires); ["recover.crash.jitter"] and
    ["recover.restart.jitter"] (re-timing of a scripted crash window);
    ["recover.ckpt.stagger"] (per-node checkpoint phase offset). *)

val set_tie_break : t -> (int -> int) option -> unit
(** Installs a same-timestamp tie-break on the engine event queue (see
    {!Simcore.Event_queue.set_tie_break}): wakes, frame arrivals,
    protocol timers and service timers scheduled for the same instant
    are concurrent, and the explorer perturbs their order here. Node
    inboxes have their own hook ({!Node.set_inbox_tie_break}). *)

val decide : t -> string -> int -> int
(** [decide t tag bound] consults the decision hook (0 without one, or
    when [bound <= 1]). Exposed so services layered on the engine (the
    recovery manager's crash re-timing, checkpoint staggering) can add
    decision points of their own that record and replay through the
    same choice vector as the engine's. *)

val set_node_decision_source :
  t -> (node:int -> string -> int -> int) option -> unit
(** Node-keyed variant of {!set_decision_source}: each node draws from
    its own recorded stream, so there is no shared cursor whose order
    would depend on the execution interleaving. The only decision hook
    {!run_parallel} accepts. *)

val decide_on : t -> node:int -> string -> int -> int
(** [decide_on t ~node tag bound] consults the node-keyed hook; without
    one it falls back to {!decide} (sequential runs only). *)
