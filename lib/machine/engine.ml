type delivery_mode = Polling | Interrupt

type config = {
  cost : Cost_model.t;
  fabric : Network.Fabric.config;
  delivery : delivery_mode;
  seed : int;
}

let default_config =
  {
    cost = Cost_model.default;
    fabric = Network.Fabric.default_config;
    delivery = Polling;
    seed = 42;
  }

type event = Wake of int

type handler = {
  h_category : Am.category;
  h_name : string;
  h_fn : t -> Node.t -> Am.t -> unit;
  h_sent : int ref;  (** cached "am.sent.<category>" counter *)
}

and t = {
  config : config;
  topo : Network.Topology.t;
  fabric : Am.t Network.Fabric.t;
  nodes : Node.t array;
  events : event Simcore.Event_queue.t;
  mutable handlers : handler array;
  mutable handler_count : int;
  stats : Simcore.Stats.t;
  rng : Simcore.Rng.t;
  mutable vnow : Simcore.Time.t;
  mutable observer : (observation -> unit) option;
}

and observation =
  | Obs_deliver of { time : Simcore.Time.t; src : int; dst : int }
  | Obs_slice of { node : int; t_start : Simcore.Time.t; t_end : Simcore.Time.t }

let create ?(config = default_config) ~nodes:n () =
  if n < 1 then invalid_arg "Engine.create: need at least one node";
  let topo = Network.Topology.square_for n in
  {
    config;
    topo;
    fabric = Network.Fabric.create ~config:config.fabric topo;
    nodes = Array.init n (fun id -> Node.create ~id);
    events = Simcore.Event_queue.create ();
    handlers = [||];
    handler_count = 0;
    stats = Simcore.Stats.create ();
    rng = Simcore.Rng.create ~seed:config.seed;
    vnow = Simcore.Time.zero;
    observer = None;
  }

let config t = t.config
let cost t = t.config.cost
let topology t = t.topo
let stats t = t.stats
let rng t = t.rng
let node_count t = Array.length t.nodes
let node t i = t.nodes.(i)
let nodes t = t.nodes
let charge t n instructions =
  Node.charge_ns n (Cost_model.time t.config.cost instructions)

let register_handler t category ~name fn =
  let h_sent =
    Simcore.Stats.counter t.stats ("am.sent." ^ Am.category_name category)
  in
  let h = { h_category = category; h_name = name; h_fn = fn; h_sent } in
  let id = t.handler_count in
  if id = Array.length t.handlers then begin
    let handlers' = Array.make (max 8 (2 * id)) h in
    Array.blit t.handlers 0 handlers' 0 id;
    t.handlers <- handlers'
  end;
  t.handlers.(id) <- h;
  t.handler_count <- t.handler_count + 1;
  id

let handler t id =
  if id < 0 || id >= t.handler_count then invalid_arg "Engine: unknown handler";
  t.handlers.(id)

let wake t node ~time =
  if Node.is_idle node then begin
    Node.set_idle node false;
    let time = max time (Node.now node) in
    Simcore.Event_queue.add t.events ~time (Wake (Node.id node))
  end

let send_am t ~src ~dst ~handler:hid ~size_bytes payload =
  let h = handler t hid in
  incr h.h_sent;
  let am = { Am.handler = hid; src = Node.id src; size_bytes; payload } in
  let now = Node.now src in
  let arrival =
    if dst = Node.id src then now + 1 (* loopback bypasses the fabric *)
    else
      Network.Fabric.send t.fabric ~now
        (Network.Packet.make ~src:(Node.id src) ~dst ~size_bytes am)
  in
  (match t.observer with
  | Some f -> f (Obs_deliver { time = arrival; src = Node.id src; dst })
  | None -> ());
  (* The message sits in the destination's arrival-ordered inbox at once
     (it only becomes *visible* when the clock passes its arrival), so
     interrupt-mode delivery can notice it mid-computation. *)
  let dst_node = t.nodes.(dst) in
  Node.inbox_push dst_node ~arrival am;
  let wake_time = max arrival (Node.now dst_node) in
  if Node.is_idle dst_node then begin
    Node.set_idle dst_node false;
    Node.set_next_wake dst_node wake_time;
    Simcore.Event_queue.add t.events ~time:wake_time (Wake dst)
  end
  else if wake_time < Node.next_wake dst_node then begin
    (* The node is waiting for a later event; this message deserves an
       earlier look. Duplicate wakes are harmless. *)
    Node.set_next_wake dst_node wake_time;
    Simcore.Event_queue.add t.events ~time:wake_time (Wake dst)
  end

let dispatch t node am =
  let c = t.config.cost in
  charge t node c.Cost_model.msg_receive_handling;
  (match t.config.delivery with
  | Polling -> ()
  | Interrupt -> charge t node c.Cost_model.interrupt_overhead);
  (handler t am.Am.handler).h_fn t node am

let poll t node =
  let rec drain () =
    match Node.inbox_pop_ready node with
    | Some (_, am) ->
        dispatch t node am;
        drain ()
    | None -> ()
  in
  drain ()

(* nCUBE/2-style delivery: message arrival interrupts the computation.
   Interrupts are taken only at explicit interrupt points — user-level
   computation (Ctx.charge) and message-send boundaries — never inside
   runtime bookkeeping, whose critical sections are thereby implicitly
   masked, as on a real machine. Re-entrant interrupts are masked while
   a handler runs. *)
let interrupt_point t node =
  if t.config.delivery = Interrupt && not (Node.interrupts_masked node) then
    match Node.inbox_pop_ready node with
    | None -> ()
    | Some (_, am) ->
        Node.set_interrupts_masked node true;
        Fun.protect
          ~finally:(fun () -> Node.set_interrupts_masked node false)
          (fun () ->
            dispatch t node am;
            poll t node)

let post t node thunk =
  Node.runq_push node thunk;
  wake t node ~time:(max t.vnow (Node.now node))

let reschedule_or_idle t node =
  if Node.runq_size node > 0 then begin
    Node.set_next_wake node (Node.now node);
    Simcore.Event_queue.add t.events ~time:(Node.now node) (Wake (Node.id node))
  end
  else
    match Node.inbox_next_arrival node with
    | Some arrival ->
        let time = max arrival (Node.now node) in
        Node.set_next_wake node time;
        Simcore.Event_queue.add t.events ~time (Wake (Node.id node))
    | None ->
        Node.set_next_wake node max_int;
        Node.set_idle node true

let set_observer t obs = t.observer <- obs

let step t node ~time =
  Node.set_next_wake node max_int;
  Simcore.Clock.advance_to (Node.clock node) time;
  let t_start = Node.now node in
  poll t node;
  (match Node.runq_pop node with
  | Some thunk ->
      charge t node t.config.cost.Cost_model.sched_dequeue;
      thunk ()
  | None -> ());
  (match t.observer with
  | Some f ->
      let t_end = Node.now node in
      if t_end > t_start then
        f (Obs_slice { node = Node.id node; t_start; t_end })
  | None -> ());
  reschedule_or_idle t node

let run ?(max_slices = max_int) t =
  let slices = ref 0 in
  let rec loop () =
    match Simcore.Event_queue.pop t.events with
    | None -> ()
    | Some (time, ev) ->
        t.vnow <- max t.vnow time;
        (match ev with
        | Wake i ->
            incr slices;
            if !slices > max_slices then
              failwith "Engine.run: max_slices exceeded (livelock?)";
            step t t.nodes.(i) ~time);
        loop ()
  in
  loop ()

let now t = t.vnow

let elapsed t =
  Array.fold_left (fun acc n -> max acc (Node.now n)) Simcore.Time.zero t.nodes

let total_busy t =
  Array.fold_left
    (fun acc n -> acc + Simcore.Clock.busy_time (Node.clock n))
    0 t.nodes

let utilization t =
  let e = elapsed t in
  if e = 0 then 0.
  else
    float_of_int (total_busy t)
    /. (float_of_int e *. float_of_int (node_count t))

let packets_sent t = Network.Fabric.packets_sent t.fabric
let bytes_sent t = Network.Fabric.bytes_sent t.fabric
