type delivery_mode = Polling | Interrupt

type config = {
  cost : Cost_model.t;
  fabric : Network.Fabric.config;
  delivery : delivery_mode;
  seed : int;
  faults : Network.Faults.plan option;
  reliable : Reliable.config;
  coalesce : Coalesce.config option;
}

let default_config =
  {
    cost = Cost_model.default;
    fabric = Network.Fabric.default_config;
    delivery = Polling;
    seed = 42;
    faults = None;
    reliable = Reliable.default_config;
    coalesce = None;
  }

(* What actually travels through the fabric: bare AMs on a perfect
   network, protocol frames under a fault plan — singly, or as one
   multi-frame packet when the aggregation layer is on. *)
type wire =
  | Data of Am.t
  | Framed of Reliable.frame
  | Batch_data of Am.t list
  | Batch_framed of Reliable.frame list

type event =
  | Wake of int
  | Frame_rx of { src : int; dst : int; frame : Reliable.frame }
  | Rel_tick of { src : int; dst : int }  (** retransmit timer *)
  | Ack_tick of { me : int; peer : int }  (** delayed standalone ack *)
  | Co_flush of { src : int; dst : int }  (** aggregation age deadline *)
  | Co_credit of { src : int; dst : int }
      (** a flushed batch landed: return its flow-control credit *)
  | Timer of (unit -> unit)
      (** engine-level timer (periodic services: gossip, migration
          policies); the thunk decides for itself whether to re-arm *)
  | Timer_on of { node : int; fn : unit -> unit }
      (** like [Timer], but owned by a node: a parallel run executes it
          on the domain that owns [node] (sequentially identical) *)

(* Crash-recovery instrumentation (installed by Recover.Manager). The
   hooks see every delivery, dispatch and send, so a manager can keep a
   stable-store delivery log and suppress the re-sends a replaying
   handler would otherwise duplicate onto the wire. *)
type recovery_hooks = {
  rc_deliver : dst:int -> arrival:Simcore.Time.t -> Am.t -> unit;
      (** a message landed in [dst]'s inbox *)
  rc_dispatch : node:int -> Am.t -> unit;
      (** a message is about to run its handler on [node] *)
  rc_send : src:int -> bool;
      (** consulted before every [send_am] from [src]; [false] swallows
          the send entirely (log replay: the original send's effects are
          already in the journaled reliable state or the delivery log) *)
}

type handler = {
  h_category : Am.category;
  h_name : string;
  h_fn : t -> Node.t -> Am.t -> unit;
  h_sent : Simcore.Stats.cell;  (** cached "am.sent.<category>" counter *)
}

and t = {
  config : config;
  topo : Network.Topology.t;
  fabric : wire Network.Fabric.t;
  nodes : Node.t array;
  events : event Simcore.Event_queue.t;
  mutable handlers : handler array;
  mutable handler_count : int;
  stats : Simcore.Stats.t;
  rng : Simcore.Rng.t;
  mutable vnow : Simcore.Time.t;
  mutable observer : (observation -> unit) option;
  rel : Reliable.t option;  (** live iff the fault plan is non-trivial *)
  co : coal option;  (** live iff [config.coalesce] is set *)
  mutable piggyback : (src:int -> dst:int -> Am.t list) option;
      (** flush-time hook: control AMs (DGC decrements, …) to append to
          a departing batch instead of sending dedicated packets *)
  mutable decision : (string -> int -> int) option;
      (** schedule-exploration hook: [decide tag bound] picks a value in
          [0, bound) at a named decision point; [None] (and a pick of 0)
          is the unperturbed baseline *)
  mutable node_decision : (node:int -> string -> int -> int) option;
      (** node-keyed decision hook: each node draws from its own stream,
          so a parallel run records and replays without a shared cursor *)
  mutable tie_break_set : bool;
  mutable recovery : recovery_hooks option;
  mutable par : par option;  (** live only inside {!run_parallel} *)
  mutable evcount : int;  (** events processed by sequential [run] *)
  (* crash-recovery state: a down node processes no events until its
     scheduled restart; incarnations count restarts (0 = original) *)
  down : bool array;
  incarnation : int array;
  restart_due : Simcore.Time.t array;
  node_crashes : int array;
  c_drop : Simcore.Stats.cell;
  c_dup : Simcore.Stats.cell;
  c_retransmit : Simcore.Stats.cell;
  c_dup_discard : Simcore.Stats.cell;
  c_ack : Simcore.Stats.cell;
  c_co_batch : Simcore.Stats.cell;
  c_co_single : Simcore.Stats.cell;
  c_co_rider : Simcore.Stats.cell;
  c_down_drop : Simcore.Stats.cell;
  c_post_refused : Simcore.Stats.cell;
}

(* The aggregation layer batches whatever the transport underneath it
   carries: bare AMs fault-free, sequenced protocol frames under a
   fault plan. *)
and coal = Co_data of Am.t Coalesce.t | Co_framed of Reliable.frame Coalesce.t

(* A cross-node delivery deferred to the next window boundary of a
   parallel run. The stamp (x_time, x_src, x_seq) is a canonical sort
   key: x_seq counts the source node's deferred sends in its (count-
   invariant) execution order, so the boundary application order — and
   with it every inbox seq and wake — is identical for any domain
   count. *)
and xitem = {
  x_time : Simcore.Time.t;  (* arrival *)
  x_src : int;
  x_seq : int;
  x_dst : int;
  x_pay : xpayload;
}

(* What crosses a boundary: a bare AM headed straight for the
   destination inbox, or a sequenced protocol frame that re-enters the
   owning domain's event queue as a [Frame_rx] — the receive-side
   protocol work (acks, resequencing) must run on the receiving CPU
   during its window, not at the boundary. *)
and xpayload = X_am of Am.t | X_frame of Reliable.frame

(* Per-run parallel state. Arrays indexed per domain use a [pstride]
   padding so no two domains share a cache line; cross-domain reads of
   the plain slots happen only across barrier phases (the barrier is the
   fence). *)
and par = {
  p_domains : int;
  p_dom_of : int array;  (* node -> owning domain *)
  p_queues : event Simcore.Event_queue.t array;  (* per domain *)
  p_boxes : xitem Simcore.Spsc.t array array;  (* [src_dom].[dst_dom] *)
  p_pending : xitem list array;  (* same-domain deferrals, newest first *)
  p_barrier : Simcore.Barrier.t;
  p_lookahead : Simcore.Time.t;
  p_mins : Simcore.Time.t array;  (* padded: domain d at [d * pstride] *)
  p_vnow : Simcore.Time.t array;  (* padded *)
  p_horizon : Simcore.Time.t array;  (* padded; current window end *)
  p_slices : int array;  (* padded *)
  p_events : int array;  (* padded *)
  p_send_seq : int array;  (* per node: deferred-send stamp *)
  p_obs_seq : int array;  (* per node: observation stamp *)
  p_obs : (Simcore.Time.t * int * int * observation) list array;
      (* per domain, newest first: (time, node, seq, obs) *)
  p_errflag : int array;
      (* padded; 1 = this domain holds an error. Published by its owner
         in the boundary phase (before barrier A) and read by everyone
         after it, so the stop verdict is computed from barrier-frozen
         data — an error raised *inside* a window is only published at
         the next boundary, never mid-round, and every domain reaches
         the same verdict in the same round. *)
  p_slices_pub : int array;
      (* padded; boundary-published copy of p_slices, frozen for the
         round's verdict like p_errflag *)
  p_err : (exn * Printexc.raw_backtrace) option array;  (* per domain *)
  mutable p_running : bool;
}

and observation =
  | Obs_deliver of { time : Simcore.Time.t; src : int; dst : int }
  | Obs_slice of { node : int; t_start : Simcore.Time.t; t_end : Simcore.Time.t }
  | Obs_batch of { time : Simcore.Time.t; src : int; dst : int; frames : int }
  | Obs_crash of { time : Simcore.Time.t; node : int; incarnation : int }
      (** the named incarnation died *)
  | Obs_restart of { time : Simcore.Time.t; node : int; incarnation : int }
      (** the node came back as the named (new) incarnation *)

(* A cross-node effect was produced inside the window it should have
   been safely beyond: the conservative-lookahead invariant is broken
   (a fabric config whose minimum latency understates some real path).
   Carries which shard violated the window, not just a string. *)
exception
  Lookahead_violation of {
    domain : int;
    node : int;
    arrival : Simcore.Time.t;
    horizon : Simcore.Time.t;
  }

let () =
  Printexc.register_printer (function
    | Lookahead_violation { domain; node; arrival; horizon } ->
        Some
          (Printf.sprintf
             "Engine.Lookahead_violation { domain = %d; node = %d; arrival = \
              %dns; horizon = %dns }"
             domain node arrival horizon)
    | _ -> None)

let create ?(config = default_config) ~nodes:n () =
  if n < 1 then invalid_arg "Engine.create: need at least one node";
  let topo = Network.Topology.square_for n in
  (* An all-zero plan is the same as no plan at all: the fabric and the
     delivery path below stay bit-identical to the fault-free build. *)
  let faults =
    match config.faults with
    | Some p when not (Network.Faults.is_fault_free p) -> Some p
    | Some _ | None -> None
  in
  let stats = Simcore.Stats.create () in
  {
    config;
    topo;
    fabric = Network.Fabric.create ~config:config.fabric ?faults topo;
    nodes = Array.init n (fun id -> Node.create ~id);
    events = Simcore.Event_queue.create ();
    handlers = [||];
    handler_count = 0;
    stats;
    rng = Simcore.Rng.create ~seed:config.seed;
    vnow = Simcore.Time.zero;
    observer = None;
    rel =
      (match faults with
      | Some _ -> Some (Reliable.create ~config:config.reliable ~nodes:n ())
      | None -> None);
    co =
      (match config.coalesce with
      | None -> None
      | Some c -> (
          match faults with
          | Some _ -> Some (Co_framed (Coalesce.create ~config:c ~nodes:n ()))
          | None -> Some (Co_data (Coalesce.create ~config:c ~nodes:n ()))));
    piggyback = None;
    decision = None;
    node_decision = None;
    tie_break_set = false;
    recovery = None;
    par = None;
    evcount = 0;
    down = Array.make n false;
    incarnation = Array.make n 0;
    restart_due = Array.make n 0;
    node_crashes = Array.make n 0;
    c_drop = Simcore.Stats.counter stats "fault.drop";
    c_dup = Simcore.Stats.counter stats "fault.dup";
    c_retransmit = Simcore.Stats.counter stats "reliable.retransmit";
    c_dup_discard = Simcore.Stats.counter stats "reliable.dup_discard";
    c_ack = Simcore.Stats.counter stats "reliable.ack";
    c_co_batch = Simcore.Stats.counter stats "coalesce.batch";
    c_co_single = Simcore.Stats.counter stats "coalesce.single";
    c_co_rider = Simcore.Stats.counter stats "coalesce.rider";
    c_down_drop = Simcore.Stats.counter stats "recover.dropped_while_down";
    c_post_refused = Simcore.Stats.counter stats "recover.posts_refused";
  }

let config t = t.config
let cost t = t.config.cost
let topology t = t.topo
let stats t = t.stats
let rng t = t.rng
let node_count t = Array.length t.nodes
let node t i = t.nodes.(i)
let nodes t = t.nodes
let reliable t = t.rel
let faults_active t = Option.is_some t.rel
let faults_state t = Network.Fabric.faults_state t.fabric
let node_down t i = t.down.(i)
let node_incarnation t i = t.incarnation.(i)
let node_crash_count t i = t.node_crashes.(i)
let set_recovery_hooks t h = t.recovery <- h

let reliable_in_flight t =
  match t.rel with Some rel -> Reliable.in_flight rel | None -> 0

let coalesce_active t = Option.is_some t.co

let coalesce_buffered t =
  match t.co with
  | Some (Co_data c) -> Coalesce.buffered c
  | Some (Co_framed c) -> Coalesce.buffered c
  | None -> 0

let coalesce_stats t =
  match t.co with
  | Some (Co_data c) -> Some (Coalesce.stats c)
  | Some (Co_framed c) -> Some (Coalesce.stats c)
  | None -> None

let set_piggyback_source t hook = t.piggyback <- hook
let set_decision_source t hook = t.decision <- hook
let set_node_decision_source t hook = t.node_decision <- hook
let set_tie_break t choose =
  (* Engine events carry no per-channel ordering of their own (frame
     arrivals re-sequence in the reliable layer), so every permutation
     of a same-time candidate set is a legal schedule. *)
  t.tie_break_set <- Option.is_some choose;
  Simcore.Event_queue.set_tie_break t.events
    (Option.map (fun f evs -> f (Array.length evs)) choose)

let decide t tag bound =
  match t.decision with
  | Some f when bound > 1 -> f tag bound
  | Some _ | None -> 0

let decide_on t ~node tag bound =
  match t.node_decision with
  | Some f when bound > 1 -> f ~node tag bound
  | Some _ -> 0
  | None -> decide t tag bound

(* --- parallel-run plumbing ---------------------------------------- *)

(* Padding stride for per-domain scalar slots: 8 words = 64 bytes. *)
let pstride = 8

(* The event sink: the engine's single queue sequentially, the calling
   domain's private queue inside a parallel run. Every event a domain
   creates targets work it owns (cross-node effects defer through the
   boundary mailboxes instead), so routing by calling domain is exact. *)
let add_event t ~time ev =
  match t.par with
  | Some p when p.p_running ->
      Simcore.Event_queue.add p.p_queues.(Simcore.Domain_ctx.current ()) ~time ev
  | _ -> Simcore.Event_queue.add t.events ~time ev

(* Virtual now as seen by the calling domain. *)
let now_cur t =
  match t.par with
  | Some p when p.p_running -> p.p_vnow.(Simcore.Domain_ctx.current () * pstride)
  | _ -> t.vnow

(* Observation emission. A parallel run buffers per domain under the
   canonical stamp (time, producing node, per-node seq) and replays the
   merged order into the observer at the end; the stamp is a total order
   (per-node seqs never collide) and count-invariant (each node's
   emission order is), so the Timeline hash is too. *)
let emit_obs t ~time ~node obs =
  match t.par with
  | Some p when p.p_running ->
      let d = Simcore.Domain_ctx.current () in
      let s = p.p_obs_seq.(node) in
      p.p_obs_seq.(node) <- s + 1;
      p.p_obs.(d) <- (time, node, s, obs) :: p.p_obs.(d)
  | _ -> ( match t.observer with Some f -> f obs | None -> ())

let quiescent t =
  Array.for_all Node.is_idle t.nodes
  && reliable_in_flight t = 0
  && coalesce_buffered t = 0

let schedule_at t ~time fn =
  add_event t ~time:(max time (now_cur t)) (Timer fn)

let schedule_on t ~node ~time fn =
  if node < 0 || node >= Array.length t.nodes then
    invalid_arg "Engine.schedule_on: bad node";
  add_event t ~time:(max time (now_cur t)) (Timer_on { node; fn })

let packets_dropped t = Network.Fabric.packets_dropped t.fabric
let packets_duplicated t = Network.Fabric.packets_duplicated t.fabric
let dropped_by_src t src = Network.Fabric.dropped_by_src t.fabric src
let duplicated_by_src t src = Network.Fabric.duplicated_by_src t.fabric src
let crash_dropped t = Network.Fabric.crash_dropped t.fabric
let crash_dropped_by_node t i = Network.Fabric.crash_dropped_by_node t.fabric i

let charge t n instructions =
  Node.charge_ns n (Cost_model.time t.config.cost instructions)

let register_handler t category ~name fn =
  let h_sent =
    Simcore.Stats.counter t.stats ("am.sent." ^ Am.category_name category)
  in
  let h = { h_category = category; h_name = name; h_fn = fn; h_sent } in
  let id = t.handler_count in
  if id = Array.length t.handlers then begin
    let handlers' = Array.make (max 8 (2 * id)) h in
    Array.blit t.handlers 0 handlers' 0 id;
    t.handlers <- handlers'
  end;
  t.handlers.(id) <- h;
  t.handler_count <- t.handler_count + 1;
  id

let handler t id =
  if id < 0 || id >= t.handler_count then invalid_arg "Engine: unknown handler";
  t.handlers.(id)

let wake t node ~time =
  (* A down node is deaf to wakeups: clearing its idle flag here would
     strand it busy-but-unscheduled forever (the run loop discards Wake
     events for down nodes). Whatever queued meanwhile is drained by the
     wake [restart_node] issues. *)
  if (not t.down.(Node.id node)) && Node.is_idle node then begin
    Node.set_idle node false;
    let time = max time (Node.now node) in
    add_event t ~time (Wake (Node.id node))
  end

(* Hand a message to the destination node's inbox, waking it if needed.
   The tail of both delivery paths (direct and reliable). *)
let deliver_local t ~dst ~arrival am =
  (match t.recovery with
  | Some h -> h.rc_deliver ~dst ~arrival am
  | None -> ());
  let dst_node = t.nodes.(dst) in
  Node.inbox_push dst_node ~arrival am;
  let wake_time = max arrival (Node.now dst_node) in
  if Node.is_idle dst_node then begin
    Node.set_idle dst_node false;
    Node.set_next_wake dst_node wake_time;
    add_event t ~time:wake_time (Wake dst)
  end
  else if wake_time < Node.next_wake dst_node then begin
    (* The node is waiting for a later event; this message deserves an
       earlier look. Duplicate wakes are harmless. *)
    Node.set_next_wake dst_node wake_time;
    add_event t ~time:wake_time (Wake dst)
  end

(* Defer a cross-node effect to the next window boundary of a parallel
   run, under the canonical (arrival, src, per-src seq) stamp:
   conservative lookahead guarantees [arrival] is at or past the
   horizon, so deferral never reorders anything a node could already
   have seen — it only fixes the application order to one that is
   independent of the domain count. *)
let defer p ~src ~dst ~arrival pay =
  let sd = Simcore.Domain_ctx.current () in
  let horizon = p.p_horizon.(sd * pstride) in
  if arrival < horizon then
    raise (Lookahead_violation { domain = sd; node = src; arrival; horizon });
  let s = p.p_send_seq.(src) in
  p.p_send_seq.(src) <- s + 1;
  let item = { x_time = arrival; x_src = src; x_seq = s; x_dst = dst; x_pay = pay } in
  let dd = p.p_dom_of.(dst) in
  if sd = dd then p.p_pending.(sd) <- item :: p.p_pending.(sd)
  else Simcore.Spsc.push p.p_boxes.(sd).(dd) item

(* Route a fabric delivery: a straight inbox hand-off sequentially, a
   deferred boundary item inside a parallel run. *)
let deliver_remote t ~src ~dst ~arrival am =
  match t.par with
  | Some p when p.p_running -> defer p ~src ~dst ~arrival (X_am am)
  | _ -> deliver_local t ~dst ~arrival am

(* Route a protocol-frame arrival. The fabric never carries loopback
   traffic, so a frame always crosses nodes: a parallel run defers it
   exactly like a bare-AM delivery and it re-enters the owning domain's
   queue at the boundary. *)
let frame_rx t ~src ~dst ~arrival frame =
  match t.par with
  | Some p when p.p_running -> defer p ~src ~dst ~arrival (X_frame frame)
  | _ -> add_event t ~time:arrival (Frame_rx { src; dst; frame })

(* --- reliable-delivery path (fault plan active) --- *)

(* [control] marks frames the interface emits at engine-event times
   (acks, retransmissions, window-released backlog): they bypass the
   fabric's call-order injection/FIFO clamps, which would serialise them
   behind data that an optimistic node slice already stamped with
   virtual-future times. First sends from a node slice are ordinary
   clamped traffic. *)
let transmit_frame t ~control ~now ~src ~dst (frame : Reliable.frame) =
  let size_bytes =
    Reliable.frame_bytes
    + (match frame.Reliable.fr_data with Some am -> am.Am.size_bytes | None -> 0)
  in
  let p = Network.Packet.make ~src ~dst ~size_bytes (Framed frame) in
  let eta, arrivals =
    if control then Network.Fabric.send_control t.fabric ~now p
    else Network.Fabric.send_flaky t.fabric ~now p
  in
  (* Anchor the frame's retransmission deadline at its fault-free
     arrival estimate, so injection queueing is not mistaken for loss. *)
  if frame.Reliable.fr_seq >= 0 then
    Reliable.note_eta (Option.get t.rel) ~src ~dst ~seq:frame.Reliable.fr_seq
      ~eta;
  (match arrivals with
  | [] -> Simcore.Stats.bump t.c_drop
  | [ _ ] -> ()
  | _ -> Simcore.Stats.bump t.c_dup);
  List.iter
    (fun arrival ->
      emit_obs t ~time:arrival ~node:src (Obs_deliver { time = arrival; src; dst });
      frame_rx t ~src ~dst ~arrival frame)
    arrivals;
  eta

let arm_rel_tick t rel ~src ~dst ~now =
  match Reliable.timer_request rel ~src ~dst ~now with
  | Some at -> add_event t ~time:at (Rel_tick { src; dst })
  | None -> ()

let rel_send t rel ~src ~dst am =
  let now = Node.now t.nodes.(src) in
  (match Reliable.push rel ~src ~dst ~now am with
  | `Send frame -> ignore (transmit_frame t ~control:false ~now ~src ~dst frame)
  | `Queued -> Simcore.Stats.incr t.stats "reliable.backlogged");
  arm_rel_tick t rel ~src ~dst ~now

(* --- per-destination aggregation (config.coalesce) --- *)

(* A frame's wire size inside a batch: its payload plus the per-frame
   length word (the batch shares one routing header and one launch). *)
let frame_wire_bytes (frame : Reliable.frame) =
  Network.Packet.batch_frame_bytes + Reliable.frame_bytes
  + (match frame.Reliable.fr_data with Some am -> am.Am.size_bytes | None -> 0)

let am_wire_bytes (am : Am.t) =
  Network.Packet.batch_frame_bytes + am.Am.size_bytes

(* Delivery of a multi-frame packet is pipelined, cut-through style: a
   frame is usable at the destination once *its* bytes have landed, not
   when the packet tail does. [arrival] is the fabric's answer for the
   last byte; earlier frames land earlier by the transmission time of
   the bytes behind them. This is what makes aggregation a latency win
   and not only a packet-count win: under a saturated injection port
   the per-frame headers and launches it removes shorten the whole
   queue. Stagger is monotone within the batch, and the first frame
   still lands after the previous packet on the channel (the port
   serialised their transmissions), so per-channel FIFO survives. *)
let staggered_arrivals t ~arrival sizes =
  let tail = List.fold_left ( + ) 0 sizes in
  let _, acc =
    List.fold_left
      (fun (behind, acc) sz ->
        let behind = behind - sz in
        (behind, (arrival - Network.Fabric.transmission_ns t.fabric behind) :: acc))
      (tail, []) sizes
  in
  List.rev acc

(* Control AMs other subsystems want to append to a departing batch
   (DGC decrement/debit traffic rides for free). *)
let collect_riders t ~src ~dst =
  match t.piggyback with
  | None -> []
  | Some hook ->
      let riders = hook ~src ~dst in
      List.iter
        (fun (am : Am.t) ->
          Simcore.Stats.bump (handler t am.Am.handler).h_sent;
          Simcore.Stats.bump t.c_co_rider)
        riders;
      riders

let note_batch t co ~src ~frames ~riders ~cause =
  Simcore.Stats.bump t.c_co_batch;
  match co with
  | Co_data c -> Coalesce.note_batch c ~src ~frames ~riders ~cause
  | Co_framed c -> Coalesce.note_batch c ~src ~frames ~riders ~cause

(* Flush the open (src, dst) buffer of a fault-free machine: one packet,
   per-frame staggered delivery straight into the destination inbox. *)
let flush_data t co ~src ~dst ~now ~cause =
  match Coalesce.take co ~src ~dst with
  | None -> ()
  | Some (ams, bytes, newest) ->
      (* Deadline/credit flushes fire at engine-event times that can
         trail the (optimistic) sender clock at append; never inject a
         packet before its newest frame existed. *)
      let now = max now newest in
      let riders = collect_riders t ~src ~dst in
      let bytes =
        List.fold_left (fun b am -> b + am_wire_bytes am) bytes riders
      in
      let ams = ams @ riders in
      let frames = List.length ams in
      note_batch t (Co_data co) ~src ~frames ~riders:(List.length riders) ~cause;
      let arrival =
        Network.Fabric.send t.fabric ~now
          (Network.Packet.make ~src ~dst ~size_bytes:bytes (Batch_data ams))
      in
      let arrivals =
        staggered_arrivals t ~arrival (List.map am_wire_bytes ams)
      in
      emit_obs t ~time:arrival ~node:src (Obs_batch { time = arrival; src; dst; frames });
      List.iter2
        (fun am at ->
          emit_obs t ~time:at ~node:src (Obs_deliver { time = at; src; dst });
          deliver_remote t ~src ~dst ~arrival:at am)
        ams arrivals;
      add_event t ~time:arrival (Co_credit { src; dst })

(* Flush the open (src, dst) buffer of the reliable layer: one flaky
   packet whose frames share a fate (all dropped, all duplicated), with
   the cumulative ack refreshed on the last frame so the batch carries
   the newest ack state. Returns whether a batch actually left (a flush
   can park on flow control). *)
let flush_framed t rel co ~src ~dst ~now ~cause =
  match Coalesce.take co ~src ~dst with
  | None -> false
  | Some (frames, bytes, newest) ->
      let now = max now newest in
      (* Riders enter the sequenced window like any other message so
         exactly-once still holds for them; window-full riders fall to
         the reliable backlog and leave with a later ack. *)
      let riders = collect_riders t ~src ~dst in
      let rev_frames, bytes, n_riders =
        List.fold_left
          (fun (fs, b, k) am ->
            match Reliable.push rel ~src ~dst ~now am with
            | `Send fr -> (fr :: fs, b + frame_wire_bytes fr, k + 1)
            | `Queued ->
                Simcore.Stats.incr t.stats "reliable.backlogged";
                (fs, b, k))
          (List.rev frames, bytes, 0) riders
      in
      (* The batch reaches the wire now: restamp the last frame with the
         current cumulative ack (cancelling a pending standalone ack). *)
      let frames =
        match rev_frames with
        | [] -> []
        | last :: rest ->
            let ack = Reliable.take_piggyback rel ~me:src ~peer:dst ~now in
            List.rev ({ last with Reliable.fr_ack = ack } :: rest)
      in
      let n_frames = List.length frames in
      note_batch t (Co_framed co) ~src ~frames:n_frames ~riders:n_riders ~cause;
      let p =
        Network.Packet.make ~src ~dst ~size_bytes:bytes (Batch_framed frames)
      in
      let eta, arrivals = Network.Fabric.send_flaky t.fabric ~now p in
      List.iter
        (fun (fr : Reliable.frame) ->
          if fr.Reliable.fr_seq >= 0 then
            Reliable.note_eta rel ~src ~dst ~seq:fr.Reliable.fr_seq ~eta)
        frames;
      (match arrivals with
      | [] -> Simcore.Stats.bump t.c_drop
      | [ _ ] -> ()
      | _ -> Simcore.Stats.bump t.c_dup);
      let sizes = List.map frame_wire_bytes frames in
      List.iter
        (fun arrival ->
          emit_obs t ~time:arrival ~node:src
            (Obs_batch { time = arrival; src; dst; frames = n_frames });
          List.iter2
            (fun fr at ->
              emit_obs t ~time:at ~node:src (Obs_deliver { time = at; src; dst });
              frame_rx t ~src ~dst ~arrival:at fr)
            frames
            (staggered_arrivals t ~arrival sizes))
        arrivals;
      (* The credit comes back at the fault-free arrival estimate, drop
         or not — flow control must not leak credits to the fault plan. *)
      add_event t ~time:eta (Co_credit { src; dst });
      if n_riders > 0 then arm_rel_tick t rel ~src ~dst ~now;
      true

let co_send_data t co ~src ~dst ~now am =
  let port_free = Network.Fabric.injection_idle t.fabric ~node:src ~now in
  match
    Coalesce.offer co ~src ~dst ~now ~bytes:(am_wire_bytes am) ~port_free am
  with
  | `Bypass ->
      Simcore.Stats.bump t.c_co_single;
      let arrival =
        Network.Fabric.send t.fabric ~now
          (Network.Packet.make ~src ~dst ~size_bytes:am.Am.size_bytes (Data am))
      in
      emit_obs t ~time:arrival ~node:src (Obs_deliver { time = arrival; src; dst });
      deliver_remote t ~src ~dst ~arrival am;
      add_event t ~time:arrival (Co_credit { src; dst })
  | `Opened ->
      (* Deadline timing is a decision point: the check may fire up to
         half a deadline late, stretching the aggregation window the way
         a busy host would. A pick of 0 is the exact deadline. Keyed by
         the flushing node so a parallel run draws without a shared
         cursor. *)
      let delay = (Coalesce.config co).Coalesce.max_delay_ns in
      let jitter = decide_on t ~node:src "co.flush.delay" (1 + (delay / 2)) in
      add_event t ~time:(now + delay + jitter) (Co_flush { src; dst })
  | `Buffered -> ()
  | `Threshold -> flush_data t co ~src ~dst ~now ~cause:Coalesce.Size

let co_send_framed t rel co ~src ~dst ~now am =
  (match Reliable.push rel ~src ~dst ~now am with
  | `Queued -> Simcore.Stats.incr t.stats "reliable.backlogged"
  | `Send frame -> (
      let port_free = Network.Fabric.injection_idle t.fabric ~node:src ~now in
      match
        Coalesce.offer co ~src ~dst ~now ~bytes:(frame_wire_bytes frame)
          ~port_free frame
      with
      | `Bypass ->
          Simcore.Stats.bump t.c_co_single;
          let eta = transmit_frame t ~control:false ~now ~src ~dst frame in
          add_event t ~time:eta (Co_credit { src; dst })
      | `Opened ->
          add_event t
            ~time:(now + (Coalesce.config co).Coalesce.max_delay_ns)
            (Co_flush { src; dst })
      | `Buffered -> ()
      | `Threshold ->
          ignore (flush_framed t rel co ~src ~dst ~now ~cause:Coalesce.Size)));
  arm_rel_tick t rel ~src ~dst ~now

(* The scheduler-idle flush: the node ran out of queued work, so
   anything still buffered leaves now at zero added latency (the
   paper's poll-when-dormant moment). *)
let flush_open_buffers t node =
  match t.co with
  | None -> ()
  | Some co -> (
      let src = Node.id node in
      let now = Node.now node in
      match co with
      | Co_data c ->
          List.iter
            (fun dst -> flush_data t c ~src ~dst ~now ~cause:Coalesce.Idle)
            (Coalesce.open_dsts c ~src)
      | Co_framed c ->
          let rel = Option.get t.rel in
          List.iter
            (fun dst ->
              ignore (flush_framed t rel c ~src ~dst ~now ~cause:Coalesce.Idle))
            (Coalesce.open_dsts c ~src))

let handle_co_flush t ~time ~src ~dst =
  match t.co with
  | None -> ()
  | Some (Co_data c) -> (
      match Coalesce.deadline_check c ~src ~dst ~now:time with
      | `Flush -> flush_data t c ~src ~dst ~now:time ~cause:Coalesce.Deadline
      | `Rearm at -> add_event t ~time:at (Co_flush { src; dst })
      | `Idle -> ())
  | Some (Co_framed c) -> (
      match Coalesce.deadline_check c ~src ~dst ~now:time with
      | `Flush ->
          ignore
            (flush_framed t (Option.get t.rel) c ~src ~dst ~now:time
               ~cause:Coalesce.Deadline)
      | `Rearm at -> add_event t ~time:at (Co_flush { src; dst })
      | `Idle -> ())

let handle_co_credit t ~time ~src ~dst =
  match t.co with
  | None -> ()
  | Some (Co_data c) -> (
      match Coalesce.credit_return c ~src ~dst with
      | `Flush -> flush_data t c ~src ~dst ~now:time ~cause:Coalesce.Credit
      | `Idle -> ())
  | Some (Co_framed c) -> (
      match Coalesce.credit_return c ~src ~dst with
      | `Flush ->
          ignore
            (flush_framed t (Option.get t.rel) c ~src ~dst ~now:time
               ~cause:Coalesce.Credit)
      | `Idle -> ())

let handle_frame t rel ~time ~src ~dst (frame : Reliable.frame) =
  let c = t.config.cost in
  let dst_node = t.nodes.(dst) in
  (* Per-frame protocol bookkeeping runs on the receiving CPU. *)
  charge t dst_node c.Cost_model.reliable_frame;
  (* The piggybacked (or pure) ack serves the reverse channel. *)
  let released = Reliable.on_ack rel ~src:dst ~dst:src ~ack:frame.Reliable.fr_ack ~now:time in
  List.iter
    (fun fr -> ignore (transmit_frame t ~control:true ~now:time ~src:dst ~dst:src fr))
    released;
  if released <> [] then arm_rel_tick t rel ~src:dst ~dst:src ~now:time;
  match frame.Reliable.fr_data with
  | None -> ()
  | Some am ->
      (match Reliable.on_data rel ~src ~dst ~seq:frame.Reliable.fr_seq am with
      | `Deliver ams ->
          List.iter (fun am -> deliver_local t ~dst ~arrival:time am) ams
      | `Duplicate -> Simcore.Stats.bump t.c_dup_discard
      | `Reordered -> ());
      (* Data owes an acknowledgement: piggybacked on reverse traffic if
         any leaves soon, otherwise by the delayed-ack timer. Duplicates
         re-ack too — the previous ack may have been lost. *)
      (match Reliable.ack_needed rel ~me:dst ~peer:src ~now:time with
      | Some at -> add_event t ~time:at (Ack_tick { me = dst; peer = src })
      | None -> ())

let handle_rel_tick t rel ~time ~src ~dst =
  match Reliable.on_timer rel ~src ~dst ~now:time with
  | `Idle -> ()
  | `Wait at -> add_event t ~time:at (Rel_tick { src; dst })
  | `Retransmit (frame, next_at) ->
      Simcore.Stats.bump t.c_retransmit;
      charge t t.nodes.(src) t.config.cost.Cost_model.reliable_retransmit;
      ignore (transmit_frame t ~control:true ~now:time ~src ~dst frame);
      add_event t ~time:next_at (Rel_tick { src; dst })

let handle_ack_tick t rel ~time ~me ~peer =
  (* An open aggregation buffer towards the peer is a free ack carrier:
     flush it and let the batch's refreshed cumulative ack stand in for
     the standalone frame. The fall-through below still transmits a pure
     ack when the flush parked on flow control or could not cancel the
     pending ack (buffered frames stamped past the ack deadline). *)
  (match t.co with
  | Some (Co_framed c) when Coalesce.has_open c ~src:me ~dst:peer ->
      ignore (flush_framed t rel c ~src:me ~dst:peer ~now:time ~cause:Coalesce.Ack)
  | _ -> ());
  match Reliable.on_ack_timer rel ~me ~peer with
  | None -> () (* piggybacked in the meantime (possibly by the flush above) *)
  | Some frame ->
      Simcore.Stats.bump t.c_ack;
      charge t t.nodes.(me) t.config.cost.Cost_model.reliable_ack;
      ignore (transmit_frame t ~control:true ~now:time ~src:me ~dst:peer frame)

(* --- the active-message entry point --- *)

let rec send_am t ~src ~dst ~handler:hid ~size_bytes payload =
  match t.recovery with
  | Some hooks when not (hooks.rc_send ~src:(Node.id src)) ->
      (* Log replay on a restarted node: the original send already made
         it into the journaled reliable state (remote) or the delivery
         log (loopback); re-emitting it would duplicate the message. *)
      ()
  | _ -> send_am_live t ~src ~dst ~handler:hid ~size_bytes payload

and send_am_live t ~src ~dst ~handler:hid ~size_bytes payload =
  let h = handler t hid in
  Simcore.Stats.bump h.h_sent;
  let am = { Am.handler = hid; src = Node.id src; size_bytes; payload } in
  let now = Node.now src in
  if dst = Node.id src then begin
    (* Loopback bypasses the fabric (and with it the fault layer); it
       stays immediate in a parallel run too — source and destination
       are the same node, so there is nothing to defer. *)
    emit_obs t ~time:(now + 1) ~node:(Node.id src)
      (Obs_deliver { time = now + 1; src = Node.id src; dst });
    deliver_local t ~dst ~arrival:(now + 1) am
  end
  else
    match (t.rel, t.co) with
    | Some rel, Some (Co_framed c) ->
        co_send_framed t rel c ~src:(Node.id src) ~dst ~now am
    | Some rel, _ -> rel_send t rel ~src:(Node.id src) ~dst am
    | None, Some (Co_data c) -> co_send_data t c ~src:(Node.id src) ~dst ~now am
    | None, _ ->
        let arrival =
          Network.Fabric.send t.fabric ~now
            (Network.Packet.make ~src:(Node.id src) ~dst ~size_bytes (Data am))
        in
        emit_obs t ~time:arrival ~node:(Node.id src)
          (Obs_deliver { time = arrival; src = Node.id src; dst });
        (* The message sits in the destination's arrival-ordered inbox at
           once (it only becomes *visible* when the clock passes its
           arrival), so interrupt-mode delivery can notice it
           mid-computation. Parallel runs defer it to the boundary. *)
        deliver_remote t ~src:(Node.id src) ~dst ~arrival am

let dispatch t node am =
  (match t.recovery with
  | Some h -> h.rc_dispatch ~node:(Node.id node) am
  | None -> ());
  let c = t.config.cost in
  charge t node c.Cost_model.msg_receive_handling;
  (match t.config.delivery with
  | Polling -> ()
  | Interrupt -> charge t node c.Cost_model.interrupt_overhead);
  (handler t am.Am.handler).h_fn t node am

(* Log replay: run a message's handler again on the restarted node. Goes
   through [dispatch] so the replayed work is charged (and observed by
   the recovery hooks) exactly like the original run. *)
let redispatch t ~node am = dispatch t t.nodes.(node) am

let poll t node =
  let rec drain () =
    match Node.inbox_pop_ready node with
    | Some (_, am) ->
        dispatch t node am;
        drain ()
    | None -> ()
  in
  drain ()

(* nCUBE/2-style delivery: message arrival interrupts the computation.
   Interrupts are taken only at explicit interrupt points — user-level
   computation (Ctx.charge) and message-send boundaries — never inside
   runtime bookkeeping, whose critical sections are thereby implicitly
   masked, as on a real machine. Re-entrant interrupts are masked while
   a handler runs. *)
let interrupt_point t node =
  if t.config.delivery = Interrupt && not (Node.interrupts_masked node) then
    match Node.inbox_pop_ready node with
    | None -> ()
    | Some (_, am) ->
        Node.set_interrupts_masked node true;
        Fun.protect
          ~finally:(fun () -> Node.set_interrupts_masked node false)
          (fun () ->
            dispatch t node am;
            poll t node)

let post t node thunk =
  (* A dead machine refuses work: the thunk is not queued (the run
     queue is volatile and a down node must stay empty), only counted.
     Callers that need the work to survive must resubmit after the
     restart — exactly like a client of a crashed server. *)
  if t.down.(Node.id node) then Simcore.Stats.bump t.c_post_refused
  else begin
    (match t.par with
    | Some p
      when p.p_running
           && p.p_dom_of.(Node.id node) <> Simcore.Domain_ctx.current () ->
        (* No canonical stamp exists for an anonymous cross-domain post;
           drive remote nodes through messages (or [schedule_on]). *)
        invalid_arg "Engine.post: cross-domain post during a parallel run"
    | _ -> ());
    Node.runq_push node thunk;
    wake t node ~time:(max (now_cur t) (Node.now node))
  end

let reschedule_or_idle t node =
  if Node.runq_size node > 0 then begin
    Node.set_next_wake node (Node.now node);
    add_event t ~time:(Node.now node) (Wake (Node.id node))
  end
  else
    match Node.inbox_next_arrival node with
    | Some arrival ->
        let time = max arrival (Node.now node) in
        Node.set_next_wake node time;
        add_event t ~time (Wake (Node.id node))
    | None ->
        Node.set_next_wake node max_int;
        Node.set_idle node true

let set_observer t obs = t.observer <- obs

(* --- crash and restart --- *)

(* Kill node [i] now: volatile state (inbox, run queue, open aggregation
   buffers) is gone; the clock survives as the engine's virtual-time
   cursor. The node processes no events until {!restart_node}. The
   reliable layer's channel state is *not* touched — under the
   pessimistic-journaling model its tables mirror the stable store, so
   the in-memory view doubles as the recovered view. *)
let crash_node t i ~restart_at =
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg "Engine.crash_node: bad node";
  if t.down.(i) then invalid_arg "Engine.crash_node: node already down";
  (* [now_cur]: in a parallel run the caller is a [Timer_on] handler on
     the owning domain, whose virtual now at that point is the event
     time — count-invariant, unlike the engine-global cursor. *)
  let vnow = now_cur t in
  let now = max vnow (Node.now t.nodes.(i)) in
  if restart_at <= now then
    invalid_arg "Engine.crash_node: restart_at must be in the future";
  t.down.(i) <- true;
  t.restart_due.(i) <- restart_at;
  t.node_crashes.(i) <- t.node_crashes.(i) + 1;
  Node.crash_reset t.nodes.(i);
  (match t.co with
  | Some (Co_data c) -> Coalesce.reset_src c ~src:i
  | Some (Co_framed c) -> Coalesce.reset_src c ~src:i
  | None -> ());
  emit_obs t ~time:vnow ~node:i
    (Obs_crash { time = vnow; node = i; incarnation = t.incarnation.(i) })

(* Bring node [i] back as a fresh incarnation and wake it so it polls
   whatever the recovery manager rebuilt into its inbox. The caller
   (the manager) restores state *before* calling this. *)
let restart_node t i =
  if not t.down.(i) then invalid_arg "Engine.restart_node: node is not down";
  t.down.(i) <- false;
  t.restart_due.(i) <- 0;
  t.incarnation.(i) <- t.incarnation.(i) + 1;
  let vnow = now_cur t in
  emit_obs t ~time:vnow ~node:i
    (Obs_restart { time = vnow; node = i; incarnation = t.incarnation.(i) });
  wake t t.nodes.(i) ~time:vnow

let step t node ~time =
  Node.set_next_wake node max_int;
  Simcore.Clock.advance_to (Node.clock node) time;
  let t_start = Node.now node in
  poll t node;
  (match Node.runq_pop node with
  | Some thunk ->
      charge t node t.config.cost.Cost_model.sched_dequeue;
      thunk ()
  | None -> ());
  (let t_end = Node.now node in
   if t_end > t_start then
     emit_obs t ~time:t_start ~node:(Node.id node)
       (Obs_slice { node = Node.id node; t_start; t_end }));
  (* The scheduler ran dry: open aggregation buffers leave now, so
     dormant nodes pay zero added send latency for coalescing. *)
  if Node.runq_size node = 0 then flush_open_buffers t node;
  reschedule_or_idle t node

(* Execute one engine event. Shared by the sequential loop and each
   parallel window (every event a domain pops targets work it owns, and
   every event it creates routes back through [add_event], so the same
   dispatch is exact in both modes). [count_slice] is the caller's
   slice accounting — the livelock bound is per mode.

   A down node is deaf: its wakes are stale, frames addressed to it
   fall on a dead interface, and its protocol timers are deferred past
   the restart rather than consumed (dropping a Rel_tick/Ack_tick would
   strand the layer's armed-timer flag and stall retransmission
   forever). *)
let exec_event t ~time ~count_slice ev =
  let deferred_to restart_at =
    if time > restart_at then time + 1 else restart_at + 1
  in
  match ev with
  | Wake i when t.down.(i) -> ()
  | Wake i ->
      count_slice ();
      step t t.nodes.(i) ~time
  | Frame_rx { dst; _ } when t.down.(dst) -> Simcore.Stats.bump t.c_down_drop
  | Frame_rx { src; dst; frame } ->
      handle_frame t (Option.get t.rel) ~time ~src ~dst frame
  | Rel_tick { src; dst } when t.down.(src) ->
      add_event t ~time:(deferred_to t.restart_due.(src)) (Rel_tick { src; dst })
  | Rel_tick { src; dst } -> handle_rel_tick t (Option.get t.rel) ~time ~src ~dst
  | Ack_tick { me; peer } when t.down.(me) ->
      add_event t ~time:(deferred_to t.restart_due.(me)) (Ack_tick { me; peer })
  | Ack_tick { me; peer } -> handle_ack_tick t (Option.get t.rel) ~time ~me ~peer
  | Co_flush { src; dst } -> handle_co_flush t ~time ~src ~dst
  | Co_credit { src; dst } -> handle_co_credit t ~time ~src ~dst
  | Timer fn -> fn ()
  | Timer_on { fn; _ } -> fn ()

let run ?(max_slices = max_int) t =
  let slices = ref 0 in
  let count_slice () =
    incr slices;
    if !slices > max_slices then
      failwith "Engine.run: max_slices exceeded (livelock?)"
  in
  let rec loop () =
    match Simcore.Event_queue.pop t.events with
    | None -> ()
    | Some (time, ev) ->
        t.vnow <- max t.vnow time;
        exec_event t ~time ~count_slice ev;
        t.evcount <- t.evcount + 1;
        loop ()
  in
  loop ()

(* --- parallel run: conservative lookahead over sharded nodes ------- *)

(* Soundness sketch. Let m be the global minimum pending-event time at a
   round boundary and L = Fabric.min_remote_latency. Every event a
   domain executes in the window [m, m + L) runs on a node whose clock
   is >= its event time >= m, so any cross-node send it performs is
   injected at now >= m and arrives at >= now + L >= m + L — at or past
   the horizon, i.e. outside the window of *every* domain. Windows are
   therefore interaction-free and domains can execute them unordered.
   Determinism: deferred deliveries apply at the next boundary in
   (arrival, src node, per-src seq) order, which is independent of the
   domain count — by induction each round's horizon, per-node work and
   boundary multiset are count-invariant, so the whole execution is. *)

let run_parallel ?(max_slices = max_int) t ~domains () =
  (* Every precondition is checked before *any* state is touched: a
     rejected call must leave the engine exactly as it was, so a caller
     can fall back to the sequential [run]. *)
  if domains < 1 then invalid_arg "Engine.run_parallel: domains must be >= 1";
  if Array.exists Fun.id t.down then
    invalid_arg "Engine.run_parallel: nodes are down";
  if t.config.fabric.Network.Fabric.contention then
    invalid_arg
      "Engine.run_parallel: fabric contention needs the sequential engine";
  if Option.is_some t.decision then
    invalid_arg
      "Engine.run_parallel: global decision hook set (use \
       set_node_decision_source)";
  if t.tie_break_set then
    invalid_arg "Engine.run_parallel: global tie-break hook set";
  if Option.is_some t.par then
    invalid_arg "Engine.run_parallel: parallel run already active";
  let lookahead = Network.Fabric.min_remote_latency t.fabric in
  if lookahead < 1 then
    invalid_arg "Engine.run_parallel: fabric lookahead is zero";
  let n = Array.length t.nodes in
  let domains = min domains n in
  (* All guards passed — mutation may start. *)
  Simcore.Stats.shard t.stats domains;
  (* Contiguous blocks of nodes per domain, balanced to within one. *)
  let dom_of = Array.init n (fun i -> i * domains / n) in
  let queues = Array.init domains (fun _ -> Simcore.Event_queue.create ()) in
  (* Hand pending events to their owners, preserving (time, seq) order:
     each queue receives its events as a subsequence of the global
     order, so per-queue tie-breaks are count-invariant too. Every
     event kind has an owning node (protocol events belong to the node
     whose channel end they tick). *)
  let rec redistribute () =
    match Simcore.Event_queue.pop t.events with
    | None -> ()
    | Some (time, ev) ->
        let d =
          match ev with
          | Wake i -> dom_of.(i)
          | Frame_rx { dst; _ } -> dom_of.(dst)
          | Rel_tick { src; _ } -> dom_of.(src)
          | Ack_tick { me; _ } -> dom_of.(me)
          | Co_flush { src; _ } -> dom_of.(src)
          | Co_credit { src; _ } -> dom_of.(src)
          | Timer _ -> dom_of.(0)
          | Timer_on { node; _ } -> dom_of.(node)
        in
        Simcore.Event_queue.add queues.(d) ~time ev;
        redistribute ()
  in
  redistribute ();
  let pad = pstride in
  let par =
    {
      p_domains = domains;
      p_dom_of = dom_of;
      p_queues = queues;
      p_boxes =
        Array.init domains (fun _ ->
            Array.init domains (fun _ -> Simcore.Spsc.create ()));
      p_pending = Array.make domains [];
      p_barrier = Simcore.Barrier.create domains;
      p_lookahead = lookahead;
      p_mins = Array.make (domains * pad) max_int;
      p_vnow = Array.make (domains * pad) t.vnow;
      p_horizon = Array.make (domains * pad) 0;
      p_slices = Array.make (domains * pad) 0;
      p_events = Array.make (domains * pad) 0;
      p_send_seq = Array.make n 0;
      p_obs_seq = Array.make n 0;
      p_obs = Array.make domains [];
      p_errflag = Array.make (domains * pad) 0;
      p_slices_pub = Array.make (domains * pad) 0;
      p_err = Array.make domains None;
      p_running = true;
    }
  in
  t.par <- Some par;
  let record_err d e =
    if par.p_err.(d) = None then
      par.p_err.(d) <- Some (e, Printexc.get_raw_backtrace ())
  in
  (* One round per iteration: apply boundary deliveries canonically,
     publish the local minimum, error flag and slice count, agree on
     the verdict (replicated, not communicated — everyone reads the
     same boundary-published slots after barrier A), execute the
     window. Every exit decision — error, empty queues, max_slices —
     is a pure function of barrier-frozen data, so all domains leave
     in the same round having crossed the same number of barriers;
     nobody can desert a barrier another domain is still waiting on. *)
  let worker d =
    Simcore.Domain_ctx.set d;
    let q = par.p_queues.(d) in
    let running = ref true in
    while !running do
      (try
         let mine = List.rev par.p_pending.(d) in
         par.p_pending.(d) <- [];
         let incoming = ref mine in
         for s = 0 to domains - 1 do
           incoming := !incoming @ Simcore.Spsc.drain par.p_boxes.(s).(d)
         done;
         let items =
           List.sort
             (fun a b ->
               match compare a.x_time b.x_time with
               | 0 -> (
                   match compare a.x_src b.x_src with
                   | 0 -> compare a.x_seq b.x_seq
                   | c -> c)
               | c -> c)
             !incoming
         in
         List.iter
           (fun it ->
             match it.x_pay with
             | X_am am -> deliver_local t ~dst:it.x_dst ~arrival:it.x_time am
             | X_frame frame ->
                 (* The protocol work runs on the receiving CPU inside
                    its next window, not at the boundary. *)
                 add_event t ~time:it.x_time
                   (Frame_rx { src = it.x_src; dst = it.x_dst; frame }))
           items;
         par.p_mins.(d * pad) <-
           (match Simcore.Event_queue.peek_time q with
           | Some tm -> tm
           | None -> max_int)
       with e -> record_err d e);
      (* Publish this domain's error flag and slice count before the
         barrier: the verdict below reads only these boundary-published
         slots, never live state a faster domain could still be
         mutating inside its window. An error raised mid-window is
         therefore invisible until the next round — where every domain
         sees it at once and exits together, matching barrier counts. *)
      par.p_errflag.(d * pad) <- (if par.p_err.(d) <> None then 1 else 0);
      par.p_slices_pub.(d * pad) <- par.p_slices.(d * pad);
      Simcore.Barrier.await par.p_barrier ~me:d;
      let stop = ref false in
      for k = 0 to domains - 1 do
        if par.p_errflag.(k * pad) <> 0 then stop := true
      done;
      if !stop then running := false
      else begin
        let m = ref max_int in
        for k = 0 to domains - 1 do
          if par.p_mins.(k * pad) < !m then m := par.p_mins.(k * pad)
        done;
        let total_slices = ref 0 in
        for k = 0 to domains - 1 do
          total_slices := !total_slices + par.p_slices_pub.(k * pad)
        done;
        if !m = max_int then running := false
        else if !total_slices > max_slices then begin
          (* Replicated verdict (frozen slot scan): every domain takes
             this branch in the same round; only domain 0 records the
             error so the report is singular. *)
          if d = 0 then
            record_err d
              (Failure "Engine.run_parallel: max_slices exceeded (livelock?)");
          running := false
        end
        else begin
          let horizon = !m + par.p_lookahead in
          par.p_horizon.(d * pad) <- horizon;
          (try
             let exec = ref true in
             while !exec do
               match Simcore.Event_queue.peek_time q with
               | Some tm when tm < horizon -> (
                   match Simcore.Event_queue.pop q with
                   | None -> exec := false
                   | Some (time, ev) ->
                       if time > par.p_vnow.(d * pad) then
                         par.p_vnow.(d * pad) <- time;
                       par.p_events.(d * pad) <- par.p_events.(d * pad) + 1;
                       exec_event t ~time
                         ~count_slice:(fun () ->
                           par.p_slices.(d * pad) <-
                             par.p_slices.(d * pad) + 1)
                         ev)
               | _ -> exec := false
             done
           with e -> record_err d e);
          Simcore.Barrier.await par.p_barrier ~me:d
        end
      end
    done
  in
  let spawned =
    Array.init (domains - 1) (fun k ->
        Domain.spawn (fun () ->
            try worker (k + 1) with e -> record_err (k + 1) e))
  in
  (try worker 0 with e -> record_err 0 e);
  Array.iter Domain.join spawned;
  par.p_running <- false;
  t.par <- None;
  Simcore.Domain_ctx.set 0;
  (* Fold the per-domain cursors back into the sequential view. *)
  for k = 0 to domains - 1 do
    if par.p_vnow.(k * pad) > t.vnow then t.vnow <- par.p_vnow.(k * pad);
    t.evcount <- t.evcount + par.p_events.(k * pad)
  done;
  (* First failure wins, by domain index — deterministic. *)
  Array.iter
    (function
      | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt | None -> ())
    par.p_err;
  (* Deterministic observation replay: merge every domain's buffer in
     canonical (time, node, seq) order — a total order, since per-node
     seqs never collide. *)
  match t.observer with
  | None -> ()
  | Some f ->
      let all =
        Array.fold_left (fun acc l -> List.rev_append l acc) [] par.p_obs
      in
      let all =
        List.sort
          (fun (t1, n1, s1, _) (t2, n2, s2, _) ->
            match compare t1 t2 with
            | 0 -> ( match compare n1 n2 with 0 -> compare s1 s2 | c -> c)
            | c -> c)
          all
      in
      List.iter (fun (_, _, _, o) -> f o) all

let events_processed t =
  match t.par with
  | Some p when p.p_running ->
      let total = ref t.evcount in
      for k = 0 to p.p_domains - 1 do
        total := !total + p.p_events.(k * pstride)
      done;
      !total
  | _ -> t.evcount

let lookahead_ns t = Network.Fabric.min_remote_latency t.fabric

(* Domain-local inside a parallel run: each worker's virtual now is its
   own cursor (the global cursor only folds back at the end). *)
let now t = now_cur t

let elapsed t =
  Array.fold_left (fun acc n -> max acc (Node.now n)) Simcore.Time.zero t.nodes

let total_busy t =
  Array.fold_left
    (fun acc n -> acc + Simcore.Clock.busy_time (Node.clock n))
    0 t.nodes

let utilization t =
  let e = elapsed t in
  if e = 0 then 0.
  else
    float_of_int (total_busy t)
    /. (float_of_int e *. float_of_int (node_count t))

let packets_sent t = Network.Fabric.packets_sent t.fabric
let bytes_sent t = Network.Fabric.bytes_sent t.fabric
