(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6), plus the ablations listed in DESIGN.md.

     dune exec bench/main.exe -- [sections] [--full] [--smoke]

   Sections: table1 table2 table3 table4 fig5 fig6 ablations faults
   migrate dgc coalesce recover traffic multiactive parallel bechamel
   all (default: all). --full runs the paper-scale N=13 / 512-node
   configurations; without it the harness caps at N<=11 so a full pass
   stays around a minute. --smoke shrinks the fault sweep to two drop
   rates and the migration bench to N=7 for CI. The traffic section
   (open-loop load against the sharded KV tier) accepts --baseline
   FILE: a previously checked-in BENCH_traffic.json whose p99_ns gates
   the current run at 1.5x; it also takes --requests N (scaled runs on
   sharded Zipf arrivals; past 50k requests the run must be paired with
   --domains D > 1, which executes it on the domain-sharded parallel
   engine). The multiactive section (serialized vs
   compatibility-annotated shards under read-heavy load) accepts
   --baseline FILE with a BENCH_multiactive.json whose
   knee_multiactive_rps must not regress. The parallel section measures
   the domain-sharded engine against the sequential loop at 1/2/4/8
   domains, gates on identical Timeline hashes across all counts (and
   against a --baseline BENCH_parallel_baseline.json), and on >= 1.5x
   wall-clock speedup at 4 domains when the host has >= 4 cores; it
   also emits per-feature envelope rows (faults / coalesce / recover
   under domains). The faults, coalesce, and recover sections accept
   --domains D: with D > 1 each re-runs its hostile workload on the
   domain-sharded engine at 1 and D domains and gates on identical
   Timeline hashes plus the feature's own invariants (exactly-once
   delivery, batches formed, restarts = crashes with bounded
   recovery).

   The schedule explorer is a checker, not a benchmark, and never runs
   under "all" — ask for it by name:

     dune exec bench/main.exe -- explore [--smoke] [--schedules N]
       [--seed N] [--workload NAME] [--out DIR] [--replay FILE]

   It sweeps recorded schedules across the check workloads with the
   invariant monitor armed, shrinks failures to minimal reproducer
   files, and exits nonzero on any violation; --replay re-executes a
   reproducer twice and asserts the runs are bit-identical. *)

open Core

let header title = Format.printf "@.=== %s ===@." title
let cost = Machine.Cost_model.default

(* Host-side perf triple for the section artifacts: each JSON-emitting
   section brackets itself with [section_start], feeds every system (or
   bare machine) it simulated to [note_events] / [note_machine_events],
   and appends [perf_fields ()] to its field list — so CI can trend
   simulator throughput uniformly across sections. Wall clock, not CPU
   time: the parallel section's whole point is wall-clock speedup. *)
let section_t0 = ref 0.
let section_events = ref 0

let section_start () =
  section_events := 0;
  section_t0 := Unix.gettimeofday ()

let note_machine_events m =
  section_events := !section_events + Machine.Engine.events_processed m

let note_events sys = note_machine_events (System.machine sys)

let perf_fields ?(domains = 1) () =
  Services.Bench_json.perf_fields
    ~wall_clock_s:(Unix.gettimeofday () -. !section_t0)
    ~events:!section_events ~domains

(* ------------------------------------------------------------------ *)
(* Table 1: costs of basic operations                                  *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: Costs of basic operations (us)";
  let m = Apps.Microbench.measure () in
  let row name measured paper =
    Format.printf "%-34s %8.2f   (paper: %4.1f)@." name (measured /. 1000.)
      paper
  in
  row "Intra-node Message (to Dormant)" m.Apps.Microbench.intra_dormant_ns 2.3;
  row "Intra-node Message (to Active)" m.intra_active_ns 9.6;
  row "Intra-node Creation" m.intra_create_ns 2.1;
  row "Latency of Inter-node Message" m.inter_latency_ns 8.9

(* ------------------------------------------------------------------ *)
(* Table 2: breakdown of an intra-node message to a dormant object     *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header "Table 2: Breakdown of intra-node message to dormant object";
  let row name instr = Format.printf "%-34s %4d instructions@." name instr in
  row "Check Locality" cost.check_locality;
  row "Lookup and Call" cost.vft_lookup_call;
  row "Switch VFTP to Active Mode" cost.switch_vft;
  row "Execution of Method Body" 0;
  row "Check Message Queue" cost.check_message_queue;
  row "Switch VFTP to Dormant Mode" cost.switch_vft;
  row "Polling of Remote Message" cost.poll_remote;
  row "Adjusting Stack Pointer and Return" cost.stack_adjust_return;
  let total = Machine.Cost_model.dormant_send_instructions cost in
  Format.printf "%-34s %4d instructions (paper: 25)@." "Total" total;
  let m = Apps.Microbench.measure () in
  Format.printf
    "measured: %.0f ns = %.1f instructions at %d ns/instr (paper: 2.3 us)@."
    m.Apps.Microbench.intra_dormant_ns
    (m.intra_dormant_ns /. float_of_int cost.ns_per_instr)
    cost.ns_per_instr;
  Format.printf
    "inlined best case (Section 8.2 + Section 6.1 optimisations): %.0f ns@."
    m.inlined_send_ns

(* ------------------------------------------------------------------ *)
(* Table 3: send/reply latency comparison                              *)
(* ------------------------------------------------------------------ *)

let table3 () =
  header "Table 3: Comparison of send/reply latency";
  let m = Apps.Microbench.measure () in
  let ours_us = m.Apps.Microbench.now_roundtrip_remote_ns /. 1000. in
  let sum2 = 2. *. m.inter_latency_ns /. 1000. in
  let row name instr us cycles mhz =
    Format.printf "%-24s %5d instr %8.1f us %6d cycles @@ %4.1f MHz@." name
      instr us cycles mhz
  in
  Format.printf
    "%-24s %5.0f instr %8.1f us %6.0f cycles @@ %4.1f MHz  (measured now-type rtt)@."
    "this reproduction"
    (ours_us *. 1000. /. float_of_int cost.ns_per_instr)
    ours_us (ours_us *. 25.) 25.;
  Format.printf "%-24s %11s %14.1f us  (2 x one-way, the paper's accounting)@."
    "this reproduction" "" sum2;
  row "ABCL/onAP1000 [paper]" 160 17.8 450 25.;
  row "ABCL/onEM-4 [14]" 100 9.0 110 12.5;
  row "CST (J-Machine) [5]" 110 4.0 220 50.

(* ------------------------------------------------------------------ *)
(* Table 4: the scale of the N-queen program                           *)
(* ------------------------------------------------------------------ *)

let table4 ~full () =
  header "Table 4: Scale of the N-queen program";
  let cases = if full then [ (8, 64); (13, 512) ] else [ (8, 64); (11, 256) ] in
  Format.printf "%4s %12s %12s %12s %12s %14s@." "N" "#solutions" "#creations"
    "#messages" "memory(KB)" "seq elapsed";
  List.iter
    (fun (n, p) ->
      let seq = Apps.Nqueens_seq.solve ~n in
      let seq_t = Apps.Nqueens_seq.modeled_time cost seq in
      let r = Apps.Nqueens_par.run ~nodes:p ~n () in
      Format.printf "%4d %12d %12d %12d %12d %11.0f ms@." n
        r.Apps.Nqueens_par.solutions r.objects_created r.messages
        (r.heap_words * 4 / 1024)
        (Simcore.Time.to_ms seq_t))
    cases;
  Format.printf
    "paper: N=8  ->     92 solutions,   2,056 creations,   4,104 messages, 130 KB, 84 ms@.";
  Format.printf
    "paper: N=13 -> 73,712 solutions, ~4.64 M creations, ~9.35 M messages, 549 MB, 462 s@."

(* ------------------------------------------------------------------ *)
(* Figure 5: speedup of the N-queen program                            *)
(* ------------------------------------------------------------------ *)

let fig5_series ~n ~procs =
  let seq = Apps.Nqueens_seq.solve ~n in
  let seq_t = Apps.Nqueens_seq.modeled_time cost seq in
  List.map
    (fun p ->
      let r = Apps.Nqueens_par.run ~nodes:p ~n () in
      ( p,
        Simcore.Time.to_ms r.Apps.Nqueens_par.elapsed,
        float_of_int seq_t /. float_of_int r.elapsed,
        r.utilization ))
    procs

let fig5 ~full () =
  header "Figure 5: Speedup for N-queen problem";
  let print_series ~n series =
    Format.printf "N = %d:@." n;
    Format.printf "  %6s %12s %10s %12s@." "#proc" "elapsed(ms)" "speedup"
      "utilization";
    List.iter
      (fun (p, ms, speedup, util) ->
        Format.printf "  %6d %12.2f %10.1f %11.0f%%@." p ms speedup
          (100. *. util))
      series
  in
  print_series ~n:8 (fig5_series ~n:8 ~procs:[ 1; 2; 4; 8; 16; 32; 64 ]);
  if full then
    print_series ~n:13 (fig5_series ~n:13 ~procs:[ 64; 128; 256; 512 ])
  else print_series ~n:11 (fig5_series ~n:11 ~procs:[ 1; 4; 16; 64; 256 ]);
  Format.printf
    "paper: N=8 -> ~20x at 64 procs; N=13 -> ~440x at 512 procs (85%% util)@."

(* ------------------------------------------------------------------ *)
(* Figure 6: effect of stack-based scheduling                          *)
(* ------------------------------------------------------------------ *)

let fig6 ~full () =
  header "Figure 6: Stack-based vs naive scheduling (N-queens, 64 nodes)";
  let ns = if full then [ 9; 10; 11; 12 ] else [ 9; 10; 11 ] in
  let series name placement =
    Format.printf "placement: %s@." name;
    Format.printf "%4s %14s %18s %10s %22s@." "N" "naive (ms)"
      "stack-based (ms)" "speedup" "local msgs to dormant";
    List.iter
      (fun n ->
        let base = { System.default_rt_config with Kernel.placement } in
        let stack = Apps.Nqueens_par.run ~rt_config:base ~nodes:64 ~n () in
        let naive =
          Apps.Nqueens_par.run
            ~rt_config:{ base with Kernel.sched_kind = Kernel.Naive }
            ~nodes:64 ~n ()
        in
        Format.printf "%4d %14.2f %18.2f %9.1f%% %20.0f%%@." n
          (Simcore.Time.to_ms naive.Apps.Nqueens_par.elapsed)
          (Simcore.Time.to_ms stack.Apps.Nqueens_par.elapsed)
          (100.
          *. (float_of_int (naive.Apps.Nqueens_par.elapsed - stack.elapsed)
             /. float_of_int stack.elapsed))
          (100. *. stack.local_dormant_fraction))
      ns
  in
  (* Global round robin minimises locality; the neighbour policy — a
     "local information" placement like the paper's — reproduces the
     paper's ~30% benefit of stack-based scheduling. *)
  series "round-robin (locality ~1/64)" Kernel.Round_robin;
  series "neighbor round-robin (locality ~1/5)" Kernel.Neighbor_round_robin;
  Format.printf
    "paper: ~30%% speedup; ~75%% of local messages go to dormant objects@."

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 5)                                     *)
(* ------------------------------------------------------------------ *)

let ablations () =
  header "Ablation: polling vs interrupt delivery (ring latency)";
  let latency config =
    let r = Apps.Ring.run ~machine_config:config ~nodes:16 ~laps:64 () in
    r.Apps.Ring.ns_per_hop /. 1000.
  in
  let polling = Machine.Engine.default_config in
  let interrupt =
    { polling with Machine.Engine.delivery = Machine.Engine.Interrupt }
  in
  Format.printf "polling:   %.2f us/hop@." (latency polling);
  Format.printf "interrupt: %.2f us/hop@." (latency interrupt);

  header "Ablation: chunk stock size (N-queens, N=10, 64 nodes)";
  Format.printf "%6s %12s %10s %12s@." "stock" "elapsed(ms)" "stalls" "refills";
  List.iter
    (fun stock ->
      let rt_config =
        { System.default_rt_config with Kernel.stock_size = stock }
      in
      let cls = Apps.Nqueens_par.solver_cls () in
      let sys = System.boot ~rt_config ~nodes:64 ~classes:[ cls ] () in
      let root =
        System.create_root sys ~node:0 cls
          [ Value.int 10; Value.int Apps.Queens_board.empty_packed; Value.unit ]
      in
      System.send_boot sys root (Pattern.intern "expand" ~arity:0) [];
      System.run sys;
      let st = System.stats sys in
      Format.printf "%6d %12.2f %10d %12d@." stock
        (Simcore.Time.to_ms (System.elapsed sys))
        (Simcore.Stats.get st "chunk.stall")
        (Simcore.Stats.get st "chunk.refill"))
    [ 1; 2; 4; 8 ];

  header "Ablation: link contention (N-queens, N=10, 64 nodes)";
  let run_contention contention =
    let machine_config =
      {
        Machine.Engine.default_config with
        Machine.Engine.fabric =
          { Network.Fabric.default_config with Network.Fabric.contention };
      }
    in
    Apps.Nqueens_par.run ~machine_config ~nodes:64 ~n:10 ()
  in
  let free = run_contention false and busy = run_contention true in
  Format.printf
    "contention-free: %.2f ms, with per-link contention: %.2f ms (%+.1f%%)@."
    (Simcore.Time.to_ms free.Apps.Nqueens_par.elapsed)
    (Simcore.Time.to_ms busy.Apps.Nqueens_par.elapsed)
    (100.
    *. float_of_int (busy.Apps.Nqueens_par.elapsed - free.elapsed)
    /. float_of_int free.elapsed);

  header "Ablation: inlined vs generic dormant send";
  let m = Apps.Microbench.measure () in
  Format.printf "generic: %.0f ns, inlined: %.0f ns, fully optimised: %.0f ns@."
    m.Apps.Microbench.intra_dormant_ns m.inlined_send_ns m.lean_send_ns;

  header
    "Ablation: placement locality vs scheduling benefit (N-queens, N=10, 64 nodes)";
  (* The stack-based fast path only applies to local messages, so the
     naive-scheduler gap grows with placement locality: global round
     robin keeps ~1/64 of messages local, neighbour round robin ~1/5,
     self-placement all of them. *)
  Format.printf "%-14s %12s %12s %10s %12s@." "placement" "stack(ms)"
    "naive(ms)" "gain" "local msgs";
  List.iter
    (fun (name, placement) ->
      let base = { System.default_rt_config with Kernel.placement } in
      let stack = Apps.Nqueens_par.run ~rt_config:base ~nodes:64 ~n:10 () in
      let naive =
        Apps.Nqueens_par.run
          ~rt_config:{ base with Kernel.sched_kind = Kernel.Naive }
          ~nodes:64 ~n:10 ()
      in
      let st = stack.Apps.Nqueens_par.elapsed in
      let nv = naive.Apps.Nqueens_par.elapsed in
      Format.printf "%-14s %12.2f %12.2f %9.1f%% %11.0f%%@." name
        (Simcore.Time.to_ms st) (Simcore.Time.to_ms nv)
        (100. *. float_of_int (nv - st) /. float_of_int st)
        (100. *. stack.local_fraction))
    [
      ("round-robin", Kernel.Round_robin);
      ("neighbor", Kernel.Neighbor_round_robin);
      ("self", Kernel.Self_node);
    ]

(* ------------------------------------------------------------------ *)
(* Degradation: fault injection + reliable delivery                    *)
(* ------------------------------------------------------------------ *)

let fault_config plan =
  {
    Machine.Engine.default_config with
    Machine.Engine.faults = (if Network.Faults.is_fault_free plan then None else Some plan);
  }

(* ------------------------------------------------------------------ *)
(* Parallel feature envelope: fault plans, coalescing, and crash       *)
(* recovery under the domain-sharded engine                            *)
(* ------------------------------------------------------------------ *)

type Machine.Am.payload += Pe_seq of { k : int }

type envelope_feature = Env_faults | Env_coalesce | Env_recover

let envelope_feature_name = function
  | Env_faults -> "faults"
  | Env_coalesce -> "coalesce"
  | Env_recover -> "recover"

type envelope_result = {
  e_hash : int;
  e_sent : int;
  e_lost : int;
  e_dup : int;
  e_in_flight : int;
  e_retransmits : int;
  e_drops : int;
  e_batches : int;
  e_restarts : int;
  e_crashes : int;
  e_recovery_max : int;
  e_audit : string list;
}

(* One hostile run at [domains]: sequenced 16-byte bursts on a ring
   (node s -> s+3) under a lossy, duplicating, jittering fabric, plus
   the feature's own machinery (framed batches, scripted crash windows
   with the recovery manager attached). Every construct is
   parallel-safe: timers are node-owned and post to their own node,
   sent counters are per-source (a single writing domain each), and
   receive-side state lives in per-node tables covered by the recovery
   snapshot. [source] supplies the node-keyed decision streams, so a
   recorded sharded schedule replays the run bit-identically at any
   domain count. *)
let envelope_burst ~feature ~rounds ~burst ~domains ~source () =
  let module Engine = Machine.Engine in
  let nodes = 8 in
  let plan =
    Network.Faults.plan ~seed:29 ~drop:0.02 ~duplicate:0.01 ~jitter_ns:400 ()
  in
  let coalesce =
    match feature with
    | Env_faults -> None
    | Env_coalesce | Env_recover ->
        Some
          {
            Machine.Coalesce.default_config with
            Machine.Coalesce.max_delay_ns = 2_000;
          }
  in
  let config =
    { Engine.default_config with Engine.faults = Some plan; coalesce }
  in
  let m = Engine.create ~config ~nodes () in
  Engine.set_node_decision_source m (Some source);
  let tl = Services.Timeline.attach_machine m in
  let next = Array.init nodes (fun _ -> Hashtbl.create 16) in
  let h =
    Engine.register_handler m Machine.Am.Service ~name:"envelope-seq"
      (fun _ node am ->
        match am.Machine.Am.payload with
        | Pe_seq { k } ->
            let me = Machine.Node.id node in
            let src = am.Machine.Am.src in
            let e = Option.value (Hashtbl.find_opt next.(me) src) ~default:0 in
            Hashtbl.replace next.(me) src (max (k + 1) e)
        | _ -> ())
  in
  let crashes =
    match feature with
    | Env_recover ->
        [
          {
            Recover.Manager.cs_node = 3;
            cs_at = 40_000;
            cs_down_ns = 30_000;
            cs_jitter_ns = 1_000;
          };
          {
            Recover.Manager.cs_node = 5;
            cs_at = 95_000;
            cs_down_ns = 30_000;
            cs_jitter_ns = 1_000;
          };
        ]
    | _ -> []
  in
  let mgr =
    match feature with
    | Env_recover ->
        let app =
          {
            Recover.Manager.a_snapshot =
              (fun node ->
                let slice =
                  Hashtbl.fold (fun s k acc -> (s, k) :: acc) next.(node) []
                in
                Some (Marshal.to_bytes (List.sort compare slice) []));
            a_restore =
              (fun node b ->
                Hashtbl.reset next.(node);
                List.iter
                  (fun (s, k) -> Hashtbl.replace next.(node) s k)
                  (Marshal.from_bytes b 0 : (int * int) list));
            a_reset = (fun node -> Hashtbl.reset next.(node));
          }
        in
        Some (Recover.Manager.attach m ~app ~crashes ())
    | _ -> None
  in
  (* Sent counters tick at actual send time inside the owning node's
     thunk, so bursts skipped on a down sender never count as sent. *)
  let sent = Array.make (nodes * nodes) 0 in
  for s = 0 to nodes - 1 do
    for r = 0 to rounds - 1 do
      Engine.schedule_on m ~node:s ~time:(12_000 + (r * 20_000)) (fun () ->
          if not (Engine.node_down m s) then
            Engine.post m (Engine.node m s) (fun () ->
                let src = Engine.node m s in
                let dst = (s + 3) mod nodes in
                let key = (s * nodes) + dst in
                for _ = 1 to burst do
                  Engine.send_am m ~src ~dst ~handler:h ~size_bytes:16
                    (Pe_seq { k = sent.(key) });
                  sent.(key) <- sent.(key) + 1
                done))
    done
  done;
  Engine.run_parallel m ~domains ();
  note_machine_events m;
  let hash = Services.Timeline.hash tl in
  Services.Timeline.detach tl;
  let lost = ref 0 and dup = ref 0 and total_sent = ref 0 in
  for s = 0 to nodes - 1 do
    for d = 0 to nodes - 1 do
      let k = sent.((s * nodes) + d) in
      if k > 0 then begin
        total_sent := !total_sent + k;
        let got = Option.value (Hashtbl.find_opt next.(d) s) ~default:0 in
        if got < k then lost := !lost + (k - got);
        if got > k then incr dup
      end
    done
  done;
  let st = Engine.stats m in
  let batches =
    match Engine.coalesce_stats m with
    | Some s -> s.Machine.Coalesce.s_batches
    | None -> 0
  in
  let audit =
    match mgr with Some g -> Recover.Manager.audit_quiescent g | None -> []
  in
  let recovery_max =
    List.fold_left
      (fun acc cs ->
        match mgr with
        | Some g -> max acc (Recover.Manager.recovery_ns g cs.Recover.Manager.cs_node)
        | None -> acc)
      0 crashes
  in
  (match mgr with Some g -> Recover.Manager.detach g | None -> ());
  {
    e_hash = hash;
    e_sent = !total_sent;
    e_lost = !lost;
    e_dup = !dup;
    e_in_flight = Engine.reliable_in_flight m;
    e_retransmits = Simcore.Stats.get st "reliable.retransmit";
    e_drops = Engine.packets_dropped m;
    e_batches = batches;
    e_restarts = Simcore.Stats.get st "recover.restarts";
    e_crashes = List.length crashes;
    e_recovery_max = recovery_max;
    e_audit = audit;
  }

(* Run the feature at 1 domain and at [domains] from the same recorded
   sharded schedule, gate on identical Timeline hashes plus the
   feature's own invariants (exactly-once; batches actually formed;
   restarts = crashes and bounded recovery), and return the parallel
   hash with the JSON fields for the caller's metrics file. Exits
   nonzero on any failure, like every other bench gate. *)
let envelope_section ~feature ~smoke ~domains () =
  let module J = Services.Bench_json in
  let name = envelope_feature_name feature in
  header
    (Printf.sprintf "Parallel envelope: %s under %d domain(s)" name domains);
  let rounds = if smoke then 4 else 8 in
  let burst = if smoke then 8 else 16 in
  let seed =
    match feature with Env_faults -> 101 | Env_coalesce -> 102 | Env_recover -> 103
  in
  let sh = Check.Schedule.record_sharded ~seed ~nodes:8 in
  let r1 =
    envelope_burst ~feature ~rounds ~burst ~domains:1
      ~source:(Check.Schedule.node_source sh) ()
  in
  let traces = Check.Schedule.traces sh in
  let rd =
    envelope_burst ~feature ~rounds ~burst ~domains
      ~source:(Check.Schedule.node_source (Check.Schedule.replay_sharded traces))
      ()
  in
  Format.printf "%d msg(s): hash %016x at 1 domain, %016x at %d domain(s) %s@."
    r1.e_sent r1.e_hash rd.e_hash domains
    (if r1.e_hash = rd.e_hash then "(identical)" else "(MISMATCH)");
  Format.printf
    "exactly-once: %d lost, %d dup channel(s), %d in flight; %d \
     retransmit(s), %d drop(s)@."
    rd.e_lost rd.e_dup rd.e_in_flight rd.e_retransmits rd.e_drops;
  (match feature with
  | Env_coalesce | Env_recover ->
      Format.printf "batches formed under domains: %d@." rd.e_batches
  | Env_faults -> ());
  (match feature with
  | Env_recover ->
      Format.printf "restarts %d of %d crash(es), worst recovery %.1f us@."
        rd.e_restarts rd.e_crashes
        (float_of_int rd.e_recovery_max /. 1000.)
  | _ -> ());
  List.iter (fun v -> Format.printf "AUDIT %s@." v) (r1.e_audit @ rd.e_audit);
  let fail msg =
    Format.printf "FAILED parallel envelope (%s): %s@." name msg;
    exit 1
  in
  if rd.e_hash <> r1.e_hash then
    fail "Timeline hash differs across domain counts";
  if r1.e_sent <> rd.e_sent then
    fail "send counts differ across domain counts";
  if r1.e_lost + rd.e_lost > 0 || r1.e_dup + rd.e_dup > 0 then
    fail "exactly-once violated";
  if rd.e_in_flight <> 0 || r1.e_in_flight <> 0 then
    fail "reliable layer not drained";
  if r1.e_audit <> [] || rd.e_audit <> [] then fail "recovery audit unclean";
  (match feature with
  | Env_coalesce | Env_recover ->
      if rd.e_batches < 1 then fail "no batches formed under domains"
  | Env_faults -> ());
  (match feature with
  | Env_recover ->
      if rd.e_restarts <> rd.e_crashes then fail "restart count <> crash count";
      if rd.e_recovery_max > 2_000_000 then fail "recovery exceeded 2 ms"
  | _ -> ());
  ( rd.e_hash,
    [
      (name ^ "_env_domains", J.Int domains);
      (name ^ "_hash", J.Str (Printf.sprintf "%016x" rd.e_hash));
      (name ^ "_hash_int", J.Int rd.e_hash);
      (name ^ "_sent", J.Int rd.e_sent);
    ] )

let faults ~smoke ~domains () =
  header "Degradation: N-queens (N=8, 16 nodes) under fault injection";
  section_start ();
  let nodes = 16 and n = 8 in
  let run_plan plan =
    let r, sys =
      Apps.Nqueens_par.run_sys ~machine_config:(fault_config plan) ~nodes ~n ()
    in
    note_events sys;
    (r, sys)
  in
  let rates = if smoke then [ 0.0; 0.05 ] else [ 0.0; 0.01; 0.02; 0.05; 0.10 ] in
  let base = ref 0 in
  (* Headline numbers at the worst drop rate, for the metrics file. *)
  let j_slowdown = ref 1.0
  and j_drops = ref 0
  and j_dups = ref 0
  and j_rexmit = ref 0
  and j_acks = ref 0
  and j_clean = ref true in
  Format.printf "%6s %10s %12s %9s %8s %6s %8s %6s %8s %6s@." "drop"
    "solutions" "elapsed(ms)" "slowdown" "dropped" "dup" "rexmit" "dupdis"
    "acks" "clean";
  List.iter
    (fun rate ->
      let plan =
        Network.Faults.plan ~seed:42 ~drop:rate ~duplicate:(rate /. 2.)
          ~jitter_ns:2_000 ()
      in
      let r, sys = run_plan plan in
      if rate = 0.0 then base := r.Apps.Nqueens_par.elapsed;
      let clean = Diagnostics.is_clean (Diagnostics.survey sys) in
      let drops, dups, rexmit, dupdis, acks =
        match Services.Faultstats.survey sys with
        | None -> (0, 0, 0, 0, 0)
        | Some f ->
            Services.Faultstats.
              ( f.total_drops,
                f.total_dups,
                f.total_retransmits,
                f.total_dup_discards,
                f.total_acks )
      in
      Format.printf "%5.0f%% %10d %12.2f %8.2fx %8d %6d %8d %6d %8d %6s@."
        (100. *. rate) r.Apps.Nqueens_par.solutions
        (Simcore.Time.to_ms r.elapsed)
        (float_of_int r.elapsed /. float_of_int !base)
        drops dups rexmit dupdis acks
        (if clean then "yes" else "NO");
      j_slowdown := float_of_int r.elapsed /. float_of_int !base;
      j_drops := drops;
      j_dups := dups;
      j_rexmit := rexmit;
      j_acks := acks;
      j_clean := !j_clean && clean;
      if not clean then begin
        Format.printf "  diagnostics:@.";
        Format.printf "  %a@." Diagnostics.pp (Diagnostics.survey sys)
      end)
    rates;

  header "Crash/recover: node 3 NIC down for 2 ms mid-run (plus 1% drop)";
  let plan =
    Network.Faults.plan ~seed:7 ~drop:0.01
      ~crashes:
        [ { Network.Faults.node = 3; from_ns = 100_000; until_ns = 2_100_000 } ]
      ()
  in
  let r, sys = run_plan plan in
  let clean = Diagnostics.is_clean (Diagnostics.survey sys) in
  Format.printf
    "solutions %d (expect 92), elapsed %.2f ms, quiescence %s@."
    r.Apps.Nqueens_par.solutions
    (Simcore.Time.to_ms r.elapsed)
    (if clean then "clean" else "DIRTY");
  (match Services.Faultstats.survey sys with
  | Some f -> Format.printf "%a@." Services.Faultstats.pp f
  | None -> ());
  Format.printf
    "chunk-stall wait while partitioned: %d ns total@."
    (Simcore.Stats.get (System.stats sys) "chunk.stall.wait_ns");
  let env_fields =
    if domains > 1 then
      snd (envelope_section ~feature:Env_faults ~smoke ~domains ())
    else []
  in
  Services.Bench_json.write ~path:"BENCH_faults.json"
    (Services.Bench_json.
       [
         ("smoke", Bool smoke);
         ("domains", Int domains);
         ("drop_max_pct", Float (100. *. List.fold_left Float.max 0. rates));
         ("slowdown_at_max_drop", Float !j_slowdown);
         ("drops", Int !j_drops);
         ("dups", Int !j_dups);
         ("retransmits", Int !j_rexmit);
         ("acks", Int !j_acks);
         ("clean", Bool !j_clean);
         ("crash_solutions", Int r.Apps.Nqueens_par.solutions);
         ("crash_elapsed_ns", Int r.Apps.Nqueens_par.elapsed);
         ("crash_clean", Bool clean);
       ]
    @ env_fields @ perf_fields ());
  Format.printf "metrics written to BENCH_faults.json@."

(* ------------------------------------------------------------------ *)
(* Migration: hot-spot rebalancing and affinity                        *)
(* ------------------------------------------------------------------ *)

(* Root solutions after a migration run: the root itself may have moved,
   so scan every node for its non-stub record. *)
let migrated_root_solutions sys ~nodes root =
  let rec scan node =
    if node >= nodes then -1
    else
      let rt = System.rt sys node in
      let found =
        Hashtbl.fold
          (fun _ (o : Kernel.obj) acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if
                  o.Kernel.self = root
                  &&
                  match o.Kernel.vftp.Kernel.vft_kind with
                  | Kernel.Vft_forward _ -> false
                  | _ -> true
                then Some o
                else None)
          rt.Kernel.objects None
      in
      match found with
      | Some o -> Value.to_int o.Kernel.state.(4)
      | None -> scan (node + 1)
  in
  scan 0

let migrate_queens ?policy ?(gossip_ns = 0) ~rt_config ~nodes ~n () =
  let cls = Apps.Nqueens_par.solver_cls () in
  let rt_config =
    { rt_config with Kernel.gossip_interval_ns = gossip_ns }
  in
  let sys = System.boot ~rt_config ~nodes ~classes:[ cls ] () in
  let m =
    match policy with
    | None -> None
    | Some policy ->
        let load = Services.Load.attach sys in
        Some (Migrate.attach ~policy ~interval_ns:100_000 ~load sys)
  in
  let root =
    System.create_root sys ~node:0 cls
      [ Value.int n; Value.int Apps.Queens_board.empty_packed; Value.unit ]
  in
  System.send_boot sys root (Pattern.intern "expand" ~arity:0) [];
  System.run sys;
  (sys, m, migrated_root_solutions sys ~nodes root)

let migrate_bench ~smoke () =
  header "Migration: hot-spot rebalancing (N-queens, all work born on node 0)";
  section_start ();
  let nodes = 16 in
  let n = if smoke then 7 else 8 in
  let expected = [| 1; 1; 0; 0; 2; 10; 4; 40; 92 |].(n) in
  (* Self-placement under the naive scheduler concentrates the whole
     solver tree on node 0 and makes queued work visible as load — the
     worst case a load policy must dig itself out of. *)
  let skewed =
    {
      System.default_rt_config with
      Kernel.placement = Kernel.Self_node;
      sched_kind = Kernel.Naive;
    }
  in
  let balanced = { skewed with Kernel.placement = Kernel.Round_robin } in
  Format.printf "%-28s %12s %8s %7s %9s %6s %6s %10s@." "configuration"
    "elapsed(ms)" "speedup" "moves" "forwarded" "chain" "sol" "ok";
  let baseline = ref 0 in
  let row name ?policy ?gossip_ns rt_config =
    let sys, m, solutions =
      migrate_queens ?policy ?gossip_ns ~rt_config ~nodes ~n ()
    in
    note_events sys;
    let elapsed = System.elapsed sys in
    if !baseline = 0 then baseline := elapsed;
    let speedup = float_of_int !baseline /. float_of_int elapsed in
    let moves, fwd, chain, conserved =
      match m with
      | None -> (0, 0, 0, true)
      | Some m ->
          ( Migrate.migrations m,
            Migrate.forwarded m,
            Migrate.max_stub_chain m,
            Migrate.residual m = (0, 0) )
    in
    let ok =
      solutions = expected && conserved
      && Diagnostics.is_clean (Diagnostics.survey sys)
    in
    Format.printf "%-28s %12.2f %7.2fx %7d %9d %6d %6d %10s@." name
      (Simcore.Time.to_ms elapsed) speedup moves fwd chain solutions
      (if ok then "yes" else "NO");
    (speedup, chain)
  in
  let _ = row "skewed, no migration" skewed in
  let speedup, chain =
    row "skewed + load-threshold"
      ~policy:
        (Migrate.Policy.Load_threshold
           { factor = 6.0; min_queue = 1; max_moves = 8 })
      ~gossip_ns:100_000 skewed
  in
  let _ =
    row "skewed + affinity-pull"
      ~policy:(Migrate.Policy.Affinity_pull { min_msgs = 4; max_moves = 4 })
      ~gossip_ns:100_000 skewed
  in
  let _ = row "balanced placement (ref)" balanced in
  Format.printf
    "load-threshold speedup %.2fx over the skewed baseline (gate: >= 2x), steady-state chain %d (gate: <= 1)@."
    speedup chain;
  if speedup < 2.0 || chain > 1 then begin
    Format.printf "FAILED hot-spot gate@.";
    exit 1
  end;

  header "Migration: affinity payoff (8 ping-pong pairs, 16 nodes)";
  (* Eight latency-bound request/reply pairs, each split across the
     torus. A worker's messages all come from its partner's node, so
     the affinity policy co-locates every pair (the partner stays put:
     co-located traffic reads as self-sent, never a majority from a
     remote node); the remaining rounds run at intra-node cost instead
     of crossing the fabric. Pulling correspondents together only pays
     while the pair is latency-bound — co-locating onto a saturated
     node would trade fabric latency for compute contention. *)
  let rounds = if smoke then 64 else 256 in
  let p_ping = Pattern.intern "ping" ~arity:1 in
  let p_pong = Pattern.intern "pong" ~arity:0 in
  let hub_cls =
    Class_def.define ~name:"hub" ~state:[||]
      ~init:(fun _ -> [||])
      ~methods:
        [
          ( p_ping,
            fun ctx msg ->
              Ctx.send ctx (Value.to_addr (Message.arg msg 0)) p_pong [] );
        ]
      ()
  in
  let worker_cls =
    Class_def.define ~name:"spoke" ~state:[| "hub"; "left" |]
      ~init:(fun args ->
        match args with
        | [ hub; left ] -> [| hub; left |]
        | _ -> invalid_arg "spoke")
      ~methods:
        [
          ( p_pong,
            fun ctx _ ->
              let left = Value.to_int (Ctx.get ctx 1) in
              if left > 0 then begin
                Ctx.set ctx 1 (Value.int (left - 1));
                Ctx.send ctx
                  (Value.to_addr (Ctx.get ctx 0))
                  p_ping
                  [ Value.addr (Ctx.self ctx) ]
              end );
        ]
      ()
  in
  let hub_row name ~policy =
    let sys =
      System.boot ~nodes ~classes:[ hub_cls; worker_cls ] ()
    in
    let m =
      Option.map (fun policy -> Migrate.attach ~policy ~interval_ns:100_000 sys)
        policy
    in
    for i = 0 to (nodes / 2) - 1 do
      let hub = System.create_root sys ~node:i hub_cls [] in
      let w =
        System.create_root sys ~node:(i + (nodes / 2)) worker_cls
          [ Value.addr hub; Value.int rounds ]
      in
      System.send_boot sys w p_pong []
    done;
    System.run sys;
    note_events sys;
    let moves, colocated =
      match m with
      | None -> (0, 0)
      | Some m -> (Migrate.migrations m, Migrate.colocated_sends m)
    in
    Format.printf "%-28s %9.2f ms %6d moves %9d colocated sends@." name
      (Simcore.Time.to_ms (System.elapsed sys))
      moves colocated;
    System.elapsed sys
  in
  let base = hub_row "pairs, no migration" ~policy:None in
  let aff =
    hub_row "pairs + affinity-pull"
      ~policy:
        (Some (Migrate.Policy.Affinity_pull { min_msgs = 4; max_moves = 4 }))
  in
  Format.printf "affinity cut elapsed by %.1f%%@."
    (100. *. float_of_int (base - aff) /. float_of_int base);
  Services.Bench_json.write ~path:"BENCH_migrate.json"
    (Services.Bench_json.
       [
         ("smoke", Bool smoke);
         ("hotspot_speedup", Float speedup);
         ("steady_chain", Int chain);
         ("affinity_base_ns", Int base);
         ("affinity_pull_ns", Int aff);
         ( "affinity_improvement_pct",
           Float (100. *. float_of_int (base - aff) /. float_of_int base) );
       ]
    @ perf_fields ());
  Format.printf "metrics written to BENCH_migrate.json@."

(* ------------------------------------------------------------------ *)
(* Distributed GC: churn steady state and migrated-object reclamation  *)
(* ------------------------------------------------------------------ *)

let dgc_total_records sys =
  let n = System.node_count sys in
  let total = ref 0 in
  for node = 0 to n - 1 do
    total := !total + Hashtbl.length (System.rt sys node).Kernel.objects
  done;
  !total

let dgc_bench ~smoke () =
  header "Distributed GC: churn steady-state memory";
  section_start ();
  let nodes = if smoke then 4 else 16 in
  let per_node = if smoke then 80 else 640 in
  let keep = 4 in
  let p_cycle = Pattern.intern "dgcb_cycle" ~arity:0 in
  let p_poke = Pattern.intern "dgcb_poke" ~arity:1 in
  let p_spawn = Pattern.intern "dgcb_spawn" ~arity:1 in
  let p_drop = Pattern.intern "dgcb_drop" ~arity:0 in
  let cell_cls =
    Class_def.define ~name:"dgcb_cell" ~state:[| "v" |]
      ~init:(fun _ -> [| Value.int 0 |])
      ~methods:[ (p_poke, fun ctx msg -> Ctx.set ctx 0 (Message.arg msg 0)) ]
      ()
  in
  (* Each cycle creates a cell on another node, pokes it, and keeps only
     the [keep] newest references: one create + one drop per cycle, a
     constant live set, and linear garbage for the collector to chase. *)
  let churn_cls =
    Class_def.define ~name:"dgcb_churner" ~state:[| "refs"; "i" |]
      ~init:(fun _ -> [| Value.List []; Value.int 0 |])
      ~methods:
        [
          ( p_cycle,
            fun ctx _ ->
              let i = Value.to_int (Ctx.get ctx 1) in
              if i < per_node then begin
                let p = Ctx.node_count ctx in
                let target = (Ctx.node_id ctx + 1 + (i mod (p - 1))) mod p in
                let a = Ctx.create_on ctx ~target cell_cls [] in
                Ctx.send ctx a p_poke [ Value.int i ];
                let refs =
                  match Ctx.get ctx 0 with Value.List l -> l | _ -> []
                in
                let kept = List.filteri (fun j _ -> j < keep - 1) refs in
                Ctx.set ctx 0 (Value.List (Value.Addr a :: kept));
                Ctx.set ctx 1 (Value.int (i + 1));
                Ctx.send ctx (Ctx.self ctx) p_cycle []
              end );
          ( p_spawn,
            fun ctx msg ->
              let target = Value.to_int (Message.arg msg 0) in
              let a = Ctx.create_on ctx ~target cell_cls [] in
              Ctx.send ctx a p_poke [ Value.int 1 ];
              let refs =
                match Ctx.get ctx 0 with Value.List l -> l | _ -> []
              in
              Ctx.set ctx 0 (Value.List (Value.Addr a :: refs)) );
          (p_drop, fun ctx _ -> Ctx.set ctx 0 (Value.List []));
        ]
      ()
  in
  let boot_churn ~with_gc =
    let sys = System.boot ~nodes ~classes:[ cell_cls; churn_cls ] () in
    let g =
      if with_gc then Some (Dgc.attach ~interval_ns:200_000 sys) else None
    in
    for node = 0 to nodes - 1 do
      let d = System.create_root sys ~node churn_cls [] in
      System.send_boot sys d p_cycle []
    done;
    (sys, g)
  in
  let cycles = nodes * per_node in
  let live = nodes * (1 + keep) in

  (* Recycling on: the collector rides a periodic timer during the run,
     then settles the reclamation cascade. *)
  let sys, g = boot_churn ~with_gc:true in
  let g = Option.get g in
  System.run sys;
  Dgc.settle g;
  note_events sys;
  let resident = dgc_total_records sys in
  let recycled =
    Simcore.Stats.get (System.stats sys) "slot.recycled"
  in
  Format.printf
    "with dgc:    %6d create/drop cycles, live set %4d -> resident %6d \
     record(s); %d reclaimed, %d restocked, %d slot(s) recycled@."
    cycles live resident (Dgc.reclaimed g) (Dgc.restocked g) recycled;
  (match Services.Gcstats.survey sys with
  | Some r -> Format.printf "%a@." Services.Gcstats.pp r
  | None -> ());

  (* Recycling off: same workload, collector never attached — memory
     can only grow. Probe events at fractions of the managed run's
     elapsed time sample the growth curve to show it is monotone. *)
  let t_end = System.elapsed sys in
  let sys_off, _ = boot_churn ~with_gc:false in
  let samples = ref [] in
  let machine_off = System.machine sys_off in
  for k = 1 to 8 do
    Machine.Engine.schedule_at machine_off ~time:(k * t_end / 8) (fun () ->
        samples := dgc_total_records sys_off :: !samples)
  done;
  System.run sys_off;
  note_events sys_off;
  samples := dgc_total_records sys_off :: !samples;
  let samples = List.rev !samples in
  let monotonic =
    fst
      (List.fold_left
         (fun (ok, prev) s -> (ok && s >= prev, s))
         (true, 0) samples)
  in
  let resident_off = List.fold_left max 0 samples in
  Format.printf
    "without dgc: %6d create/drop cycles, live set %4d -> resident %6d \
     record(s), growth monotone: %b@."
    cycles live resident_off monotonic;
  Format.printf
    "steady-state gate: resident %d <= 2x live %d; unmanaged growth %d >= \
     cycles %d@."
    resident (2 * live) resident_off cycles;
  if resident > 2 * live then begin
    Format.printf "FAILED steady-state memory gate@.";
    exit 1
  end;
  if (not monotonic) || resident_off < cycles then begin
    Format.printf "FAILED unmanaged-growth control gate@.";
    exit 1
  end;
  if recycled = 0 || Dgc.restocked g = 0 then begin
    Format.printf "FAILED slot-recycling gate@.";
    exit 1
  end;

  header "Distributed GC: migrated-then-dropped reclamation";
  let cells = if smoke then 12 else 48 in
  let sys = System.boot ~nodes ~classes:[ cell_cls; churn_cls ] () in
  let m = Migrate.attach sys in
  let g = Dgc.attach ~migrate:m sys in
  let h = System.create_root sys ~node:0 churn_cls [] in
  for i = 1 to cells do
    System.send_boot sys h p_spawn [ Value.int (i mod nodes) ];
    System.run sys
  done;
  (* scatter every cell away from its birth node, then drop the lot *)
  let refs =
    match (Option.get (System.lookup_obj sys h)).Kernel.state.(0) with
    | Value.List vs ->
        List.filter_map (function Value.Addr a -> Some a | _ -> None) vs
    | _ -> []
  in
  let moved = ref 0 in
  List.iteri
    (fun i a ->
      if Migrate.move m ~canon:a ~to_:((a.Value.node + 3 + i) mod nodes) then
        incr moved;
      System.run sys)
    refs;
  System.send_boot sys h p_drop [];
  System.run sys;
  Dgc.settle g;
  note_events sys;
  let stubs_left = ref 0 in
  for node = 0 to nodes - 1 do
    stubs_left := !stubs_left + Migrate.stub_count m ~node
  done;
  let live_stubs_in_report =
    match Services.Migstats.survey sys with
    | Some r ->
        Array.fold_left
          (fun acc (row : Services.Migstats.node_row) ->
            acc + row.Services.Migstats.stubs)
          0 r.Services.Migstats.per_node
    | None -> -1
  in
  Format.printf
    "%d cell(s) spawned, %d migrated, then dropped: %d recall(s), %d \
     unstub(s), %d forwarding stub(s) left (migstats sees %d)@."
    cells !moved (Dgc.recalls g) (Dgc.unstubs g) !stubs_left
    live_stubs_in_report;
  if !stubs_left <> 0 || live_stubs_in_report <> 0 then begin
    Format.printf "FAILED forwarding-stub reclamation gate@.";
    exit 1
  end;
  if !moved = 0 || Dgc.unstubs g = 0 then begin
    Format.printf "FAILED migration coverage gate (workload too tame)@.";
    exit 1
  end;
  (match Dgc.audit g with
  | [] -> Format.printf "weight audit: balanced@."
  | problems ->
      List.iter (fun p -> Format.printf "audit: %s@." p) problems;
      Format.printf "FAILED weight-conservation audit@.";
      exit 1);
  Services.Bench_json.write ~path:"BENCH_dgc.json"
    (Services.Bench_json.
       [
         ("smoke", Bool smoke);
         ("cycles", Int cycles);
         ("live_set", Int live);
         ("resident_with_dgc", Int resident);
         ("resident_without_dgc", Int resident_off);
         ("slots_recycled", Int recycled);
         ("cells_migrated", Int !moved);
         ("recalls", Int (Dgc.recalls g));
         ("unstubs", Int (Dgc.unstubs g));
       ]
    @ perf_fields ());
  Format.printf "metrics written to BENCH_dgc.json@."

(* ------------------------------------------------------------------ *)
(* Aggregation: per-destination batching of bursty traffic             *)
(* ------------------------------------------------------------------ *)

type Machine.Am.payload += B_stamp of int

(* Bursty sender: each round, a few nodes enqueue a back-to-back burst
   of small messages to a few destinations — the pattern of the
   runtime's control services (DGC decrement flushes, load gossip),
   where the processor queues a sweep's worth of sends and moves on.
   The sends are gap-0 on purpose: spaced sends never outrun the
   injection port and always take the bypass path (that invariance is
   what the Table-1 gate below checks). Receive handling is made cheap
   (and identical in both configs) so the row measures the transport,
   not the receiver's dispatch loop. *)
let coalesce_burst ~coal ~faults ~rounds ~senders ~dests ~burst =
  let nodes = 16 in
  let msg_bytes = 8 in
  let round_gap = 50_000 in
  let config =
    {
      Machine.Engine.default_config with
      Machine.Engine.cost =
        { Machine.Cost_model.default with msg_receive_handling = 2 };
      coalesce = (if coal then Some Machine.Coalesce.default_config else None);
      faults;
    }
  in
  let m = Machine.Engine.create ~config ~nodes () in
  let count = ref 0 and lat_sum = ref 0 in
  let h =
    Machine.Engine.register_handler m Machine.Am.Service ~name:"coal-stamp"
      (fun _ node am ->
        match am.Machine.Am.payload with
        | B_stamp t0 ->
            incr count;
            lat_sum := !lat_sum + (Machine.Node.now node - t0)
        | _ -> ())
  in
  for r = 0 to rounds - 1 do
    Machine.Engine.schedule_at m ~time:(r * round_gap) (fun () ->
        for s = 0 to senders - 1 do
          let src = Machine.Engine.node m s in
          Machine.Engine.post m src (fun () ->
              for d = 1 to dests do
                let dst = (s + (d * 4) + 1) mod nodes in
                for _ = 1 to burst do
                  Machine.Engine.send_am m ~src ~dst ~handler:h
                    ~size_bytes:msg_bytes
                    (B_stamp (Machine.Node.now src))
                done
              done)
        done)
  done;
  Machine.Engine.run m;
  (m, !count, float_of_int !lat_sum /. float_of_int (max 1 !count))

let coalesce_bench ~smoke ~domains () =
  header "Aggregation: per-destination batching under bursty control traffic";
  section_start ();
  let rounds = if smoke then 8 else 32 in
  let senders = 4 and dests = 3 and burst = 16 in
  let expected = rounds * senders * dests * burst in
  let row name (m, count, mean) =
    Format.printf
      "%-18s %6d msgs %8d packet(s) %10d bytes  mean latency %8.0f ns@." name
      count
      (Machine.Engine.packets_sent m)
      (Machine.Engine.bytes_sent m) mean;
    (m, count, mean)
  in
  let off =
    row "batching off" (coalesce_burst ~coal:false ~faults:None ~rounds ~senders ~dests ~burst)
  in
  let on =
    row "batching on" (coalesce_burst ~coal:true ~faults:None ~rounds ~senders ~dests ~burst)
  in
  let m_off, n_off, lat_off = off and m_on, n_on, lat_on = on in
  note_machine_events m_off;
  note_machine_events m_on;
  if n_off <> expected || n_on <> expected then begin
    Format.printf "FAILED delivery-count gate (expected %d)@." expected;
    exit 1
  end;
  let p_off = Machine.Engine.packets_sent m_off
  and p_on = Machine.Engine.packets_sent m_on in
  (match Machine.Engine.coalesce_stats m_on with
  | Some s ->
      Format.printf
        "flush causes: size %d idle %d deadline %d ack %d credit %d; frames \
         per batch %a@."
        s.Machine.Coalesce.s_flush_size s.Machine.Coalesce.s_flush_idle
        s.Machine.Coalesce.s_flush_deadline s.Machine.Coalesce.s_flush_ack
        s.Machine.Coalesce.s_flush_credit Simcore.Histogram.pp
        s.Machine.Coalesce.s_occupancy
  | None -> ());
  Format.printf
    "packet reduction %.1fx (gate: >= 2x), mean latency %.0f -> %.0f ns \
     (gate: lower)@."
    (float_of_int p_off /. float_of_int (max 1 p_on))
    lat_off lat_on;
  if p_off < 2 * p_on then begin
    Format.printf "FAILED packet-reduction gate@.";
    exit 1
  end;
  if lat_on >= lat_off then begin
    Format.printf "FAILED mean-latency gate@.";
    exit 1
  end;

  (* Same burst under a lossy fabric: whole batches share a fate, the
     reliable layer re-sequences their frames, and delivery must still
     be exactly-once. *)
  let plan = Network.Faults.plan ~seed:11 ~drop:0.05 ~duplicate:0.02 () in
  let m_f, n_f, lat_f =
    coalesce_burst ~coal:true ~faults:(Some plan) ~rounds ~senders ~dests
      ~burst
  in
  note_machine_events m_f;
  let rel = Option.get (Machine.Engine.reliable m_f) in
  let acks_piggy = ref 0 in
  for node = 0 to Machine.Engine.node_count m_f - 1 do
    acks_piggy := !acks_piggy + Machine.Reliable.node_acks_piggybacked rel node
  done;
  Format.printf
    "with 5%% drop: %6d msgs %8d packet(s), mean latency %8.0f ns, %d \
     dropped, %d ack(s) piggybacked on batches, in flight %d@."
    n_f
    (Machine.Engine.packets_sent m_f)
    lat_f
    (Machine.Engine.packets_dropped m_f)
    !acks_piggy
    (Machine.Engine.reliable_in_flight m_f);
  if n_f <> expected || Machine.Engine.reliable_in_flight m_f <> 0 then begin
    Format.printf "FAILED exactly-once-under-faults gate@.";
    exit 1
  end;

  (* The bypass invariant: with aggregation enabled but traffic spaced
     (every app workload — sends cost setup instructions that outpace
     the injection port), Table 1 must not move. *)
  let coal_cfg =
    {
      Machine.Engine.default_config with
      Machine.Engine.coalesce = Some Machine.Coalesce.default_config;
    }
  in
  let base = Apps.Microbench.measure () in
  let with_coal = Apps.Microbench.measure ~machine_config:coal_cfg () in
  let dev a b = 100. *. (b -. a) /. a in
  let d_dorm =
    dev base.Apps.Microbench.intra_dormant_ns
      with_coal.Apps.Microbench.intra_dormant_ns
  and d_inter =
    dev base.Apps.Microbench.inter_latency_ns
      with_coal.Apps.Microbench.inter_latency_ns
  in
  Format.printf
    "Table 1 with aggregation on: dormant send %.2f us (%+.1f%%), inter-node \
     latency %.2f us (%+.1f%%)  (gate: within 5%%)@."
    (with_coal.intra_dormant_ns /. 1000.)
    d_dorm
    (with_coal.inter_latency_ns /. 1000.)
    d_inter;
  if Float.abs d_dorm > 5. || Float.abs d_inter > 5. then begin
    Format.printf "FAILED Table-1 preservation gate@.";
    exit 1
  end;
  let env_fields =
    if domains > 1 then
      snd (envelope_section ~feature:Env_coalesce ~smoke ~domains ())
    else []
  in
  Services.Bench_json.write ~path:"BENCH_coalesce.json"
    (Services.Bench_json.
       [
         ("smoke", Bool smoke);
         ("domains", Int domains);
         ("messages", Int expected);
         ("packets_off", Int p_off);
         ("packets_on", Int p_on);
         ( "packet_reduction",
           Float (float_of_int p_off /. float_of_int (max 1 p_on)) );
         ("mean_latency_off_ns", Float lat_off);
         ("mean_latency_on_ns", Float lat_on);
         ("faulted_packets", Int (Machine.Engine.packets_sent m_f));
         ("faulted_dropped", Int (Machine.Engine.packets_dropped m_f));
         ("acks_piggybacked", Int !acks_piggy);
         ("table1_dormant_dev_pct", Float d_dorm);
         ("table1_inter_dev_pct", Float d_inter);
       ]
    @ env_fields @ perf_fields ());
  Format.printf "metrics written to BENCH_coalesce.json@."

(* ------------------------------------------------------------------ *)
(* Crash recovery: kill a node mid-burst, restore, replay              *)
(* ------------------------------------------------------------------ *)

type Machine.Am.payload += Rb_seq of { k : int }

(* Sequenced bursts from three senders into fixed destinations on a raw
   engine with the recovery manager attached; [crash] names the victims
   and instants. Returns everything the gates need. *)
let recover_burst ~rounds ~burst ~crashes () =
  let module Engine = Machine.Engine in
  let plan = Network.Faults.plan ~seed:11 ~drop:0.01 ~duplicate:0.0 ~jitter_ns:500 () in
  let config = { Engine.default_config with Engine.faults = Some plan } in
  let nodes = 8 in
  let m = Engine.create ~config ~nodes () in
  let tl = Services.Timeline.attach_machine m in
  let next = Array.init nodes (fun _ -> Hashtbl.create 16) in
  let last_rx = Array.make nodes 0 in
  let max_gap = Array.make nodes 0 in
  let lost = ref 0 and dup_or_reorder = ref 0 in
  let h =
    Engine.register_handler m Machine.Am.Service ~name:"recover-seq"
      (fun _ node am ->
        match am.Machine.Am.payload with
        | Rb_seq { k } ->
            let me = Machine.Node.id node in
            let src = am.Machine.Am.src in
            let now = Machine.Node.now node in
            if last_rx.(me) > 0 then
              max_gap.(me) <- max max_gap.(me) (now - last_rx.(me));
            last_rx.(me) <- now;
            let e = Option.value (Hashtbl.find_opt next.(me) src) ~default:0 in
            if k <> e then incr dup_or_reorder;
            Hashtbl.replace next.(me) src (max (k + 1) e)
        | _ -> ())
  in
  let app =
    {
      Recover.Manager.a_snapshot =
        (fun node ->
          let slice =
            Hashtbl.fold (fun s k acc -> (s, k) :: acc) next.(node) []
          in
          Some (Marshal.to_bytes (List.sort compare slice) []));
      a_restore =
        (fun node b ->
          Hashtbl.reset next.(node);
          List.iter
            (fun (s, k) -> Hashtbl.replace next.(node) s k)
            (Marshal.from_bytes b 0 : (int * int) list));
      a_reset = (fun node -> Hashtbl.reset next.(node));
    }
  in
  let mgr = Recover.Manager.attach m ~app ~crashes () in
  let senders = 3 and dests = 2 in
  let sent = Hashtbl.create 16 in
  for r = 0 to rounds - 1 do
    Engine.schedule_at m ~time:(10_000 + (r * 40_000)) (fun () ->
        for s = 0 to senders - 1 do
          let src = Engine.node m s in
          Engine.post m src (fun () ->
              for d = 1 to dests do
                let dst = (s + (d * 3)) mod nodes in
                for _ = 1 to burst do
                  let ch = (s, dst) in
                  let k = Option.value (Hashtbl.find_opt sent ch) ~default:0 in
                  Hashtbl.replace sent ch (k + 1);
                  Engine.send_am m ~src ~dst ~handler:h ~size_bytes:8
                    (Rb_seq { k })
                done
              done)
        done)
  done;
  Engine.run m;
  Hashtbl.iter
    (fun (s, d) k ->
      let got = Option.value (Hashtbl.find_opt next.(d) s) ~default:0 in
      if got < k then lost := !lost + (k - got);
      if got > k then incr dup_or_reorder)
    sent;
  (m, tl, mgr, !lost, !dup_or_reorder, max_gap)

let recover_bench ~smoke ~domains () =
  header "Crash recovery: kill a node mid-burst, restore, replay";
  section_start ();
  let module Engine = Machine.Engine in
  let rounds = if smoke then 3 else 6 in
  let burst = 16 in
  let down_ns = 40_000 in
  let crashes =
    {
      Recover.Manager.cs_node = 3;
      cs_at = 30_000;
      cs_down_ns = down_ns;
      cs_jitter_ns = 0;
    }
    :: {
         Recover.Manager.cs_node = 6;
         cs_at = 65_000;
         cs_down_ns = down_ns;
         cs_jitter_ns = 0;
       }
    ::
    (if smoke then []
     else
       [
         (* Full scale also kills a sender mid-burst. *)
         {
           Recover.Manager.cs_node = 1;
           cs_at = 120_000;
           cs_down_ns = down_ns;
           cs_jitter_ns = 0;
         };
       ])
  in
  let m, tl, mgr, lost, dup, max_gap = recover_burst ~rounds ~burst ~crashes () in
  note_machine_events m;
  let audit = Recover.Manager.audit_quiescent mgr in
  let report = Option.get (Services.Recoverstats.survey_machine m) in
  Format.printf "%a@." Services.Recoverstats.pp report;
  let crashed = List.map (fun cs -> cs.Recover.Manager.cs_node) crashes in
  let outage =
    List.fold_left (fun acc i -> max acc max_gap.(i)) 0 crashed
  in
  let baseline =
    let b = ref 0 in
    Array.iteri (fun i g -> if not (List.mem i crashed) then b := max !b g) max_gap;
    !b
  in
  let recovery_max =
    List.fold_left (fun acc i -> max acc (Recover.Manager.recovery_ns mgr i)) 0 crashed
  in
  Format.printf
    "lost %d, duplicated/reordered %d (gate: both 0); in flight %d@." lost dup
    (Engine.reliable_in_flight m);
  Format.printf
    "worst recovery %d ns (gate: <= 2 ms); delivery outage %d ns on crashed \
     nodes vs %d ns baseline (gate: <= 8 ms)@."
    recovery_max outage baseline;
  List.iter (fun v -> Format.printf "AUDIT %s@." v) audit;
  if lost > 0 || dup > 0 then begin
    Format.printf "FAILED zero-lost/zero-duplicate gate@.";
    exit 1
  end;
  if Engine.reliable_in_flight m <> 0 then begin
    Format.printf "FAILED in-flight-drained gate@.";
    exit 1
  end;
  if audit <> [] then begin
    Format.printf "FAILED recovery-audit gate@.";
    exit 1
  end;
  if report.Services.Recoverstats.restarts <> List.length crashes then begin
    Format.printf "FAILED restart-count gate@.";
    exit 1
  end;
  if recovery_max > 2_000_000 then begin
    Format.printf "FAILED bounded-recovery-time gate@.";
    exit 1
  end;
  if outage > 8_000_000 then begin
    Format.printf "FAILED delivery-outage gate@.";
    exit 1
  end;

  (* Deterministic replay: a recorded schedule of the recover workload
     (crash instants re-timed through recorded decision points) must
     replay to a bit-identical Timeline hash. *)
  let wl = Option.get (Check.Workloads.find "recover") in
  let o = Check.Explore.run_recorded wl ~seed:3 in
  let r = Check.Explore.replay wl o.Check.Explore.o_trace in
  let identical =
    r.Check.Explore.rp_identical
    && r.Check.Explore.rp_outcome.Check.Explore.o_hash
       = o.Check.Explore.o_hash
  in
  Format.printf "recorded crash schedule replay: %016x / %016x %s@."
    o.Check.Explore.o_hash r.Check.Explore.rp_outcome.Check.Explore.o_hash
    (if identical then "identical" else "MISMATCH");
  if not identical then begin
    Format.printf "FAILED deterministic-replay gate@.";
    exit 1
  end;

  (* System-level composition: migration stream + DGC churn while a
     node's interface goes dark twice (network-down windows — the
     runtime keeps computing, the fabric drops its packets), with the
     location re-advertisement repair at each recovery point. *)
  let stream_result = ref None in
  let p_add = Pattern.intern "rb_add" ~arity:1 in
  let p_report = Pattern.intern "rb_report" ~arity:0 in
  let p_next = Pattern.intern "rb_next" ~arity:0 in
  let p_poke = Pattern.intern "rb_poke" ~arity:1 in
  let p_churn = Pattern.intern "rb_churn" ~arity:2 in
  let cell =
    Class_def.define ~name:"rb_cell" ~state:[| "hash"; "sum" |]
      ~init:(fun _ -> [| Value.int 0; Value.int 0 |])
      ~methods:
        [
          ( p_add,
            fun ctx msg ->
              let k = Value.to_int (Message.arg msg 0) in
              Ctx.set ctx 0
                (Value.int ((31 * Value.to_int (Ctx.get ctx 0)) + k));
              Ctx.set ctx 1 (Value.int (Value.to_int (Ctx.get ctx 1) + k)) );
          ( p_report,
            fun ctx _ ->
              stream_result :=
                Some
                  ( Value.to_int (Ctx.get ctx 0),
                    Value.to_int (Ctx.get ctx 1) ) );
        ]
      ()
  in
  let driver =
    Class_def.define ~name:"rb_driver" ~state:[| "target"; "i"; "count" |]
      ~init:(fun args ->
        match args with
        | [ target; count ] -> [| target; Value.int 1; count |]
        | _ -> invalid_arg "rb_driver")
      ~methods:
        [
          ( p_next,
            fun ctx _ ->
              let target =
                match Ctx.get ctx 0 with Value.Addr a -> a | _ -> assert false
              in
              let i = Value.to_int (Ctx.get ctx 1) in
              let count = Value.to_int (Ctx.get ctx 2) in
              if i <= count then begin
                Ctx.send ctx target p_add [ Value.int i ];
                Ctx.set ctx 1 (Value.int (i + 1));
                Ctx.send ctx (Ctx.self ctx) p_next []
              end
              else Ctx.send ctx target p_report [] );
        ]
      ()
  in
  let gcell =
    Class_def.define ~name:"rb_gcell" ~state:[| "v" |]
      ~init:(fun _ -> [| Value.int 0 |])
      ~methods:[ (p_poke, fun ctx msg -> Ctx.set ctx 0 (Message.arg msg 0)) ]
      ()
  in
  let churner =
    Class_def.define ~name:"rb_churner" ~state:[| "ref" |]
      ~init:(fun _ -> [| Value.unit |])
      ~methods:
        [
          ( p_churn,
            fun ctx msg ->
              let i = Value.to_int (Message.arg msg 0) in
              let n = Value.to_int (Message.arg msg 1) in
              if i < n then begin
                let p = Ctx.node_count ctx in
                let target = (Ctx.node_id ctx + 1 + (i mod (p - 1))) mod p in
                let a = Ctx.create_on ctx ~target gcell [] in
                Ctx.send ctx a p_poke [ Value.int i ];
                Ctx.set ctx 0 (Value.Addr a);
                Ctx.send ctx (Ctx.self ctx) p_churn
                  [ Value.int (i + 1); Value.int n ]
              end );
        ]
      ()
  in
  let plan = Network.Faults.plan ~seed:5 ~drop:0.02 ~duplicate:0.0 () in
  let machine_config =
    { Engine.default_config with Engine.faults = Some plan }
  in
  let sys =
    System.boot ~machine_config ~nodes:4
      ~classes:[ cell; driver; gcell; churner ] ()
  in
  let machine = System.machine sys in
  let dark = 2 in
  let windows =
    [
      { Network.Faults.node = dark; from_ns = 40_000; until_ns = 80_000 };
      { Network.Faults.node = dark; from_ns = 160_000; until_ns = 200_000 };
    ]
  in
  (match Engine.faults_state machine with
  | Some f -> Network.Faults.set_crashes f windows
  | None -> assert false);
  let mig = Migrate.attach sys in
  let g = Dgc.attach ~interval_ns:120_000 sys in
  let count = if smoke then 36 else 96 in
  let cell_addr = System.create_root sys ~node:0 cell [] in
  let d =
    System.create_root sys ~node:1 driver
      [ Value.Addr cell_addr; Value.int count ]
  in
  (* Park the stream's target on the dark node before the first window,
     move it away between the windows, and repair locations at each
     recovery point. *)
  Engine.schedule_at machine ~time:15_000 (fun () ->
      ignore (Migrate.move mig ~canon:cell_addr ~to_:dark));
  Engine.schedule_at machine ~time:120_000 (fun () ->
      ignore (Migrate.move mig ~canon:cell_addr ~to_:3));
  let readvertised = ref 0 in
  List.iter
    (fun w ->
      Engine.schedule_at machine ~time:(w.Network.Faults.until_ns + 1_000)
        (fun () ->
          readvertised := !readvertised + Migrate.readvertise mig ~node:dark))
    windows;
  for node = 0 to 3 do
    let c = System.create_root sys ~node churner [] in
    System.send_boot sys c p_churn [ Value.int 0; Value.int (if smoke then 16 else 32) ]
  done;
  System.send_boot sys d p_next [];
  System.run sys;
  Dgc.settle g;
  note_events sys;
  let want_hash, want_sum =
    List.fold_left
      (fun (h, s) k -> ((31 * h) + k, s + k))
      (0, 0)
      (List.init count (fun i -> i + 1))
  in
  let stream_ok =
    match !stream_result with
    | Some (h, s) -> h = want_hash && s = want_sum
    | None -> false
  in
  let dgc_audit = Dgc.audit g in
  let dgc_recovery =
    List.concat (List.init 4 (fun node -> Dgc.recovery_audit g ~node))
  in
  let held, limbo = Migrate.residual mig in
  Format.printf
    "dark-interface composition: stream %s, %d location update(s) \
     re-advertised, DGC audit %d + recovery audit %d finding(s), residual \
     %d/%d@."
    (if stream_ok then "exact" else "WRONG")
    !readvertised (List.length dgc_audit)
    (List.length dgc_recovery)
    held limbo;
  List.iter (fun v -> Format.printf "DGC %s@." v) dgc_audit;
  List.iter (fun v -> Format.printf "DGC-RECOVERY %s@." v) dgc_recovery;
  if
    (not stream_ok) || dgc_audit <> [] || dgc_recovery <> [] || held <> 0
    || limbo <> 0
  then begin
    Format.printf "FAILED dark-interface composition gate@.";
    exit 1
  end;

  let env_hash =
    if domains > 1 then
      Some (fst (envelope_section ~feature:Env_recover ~smoke ~domains ()))
    else None
  in

  (* Metrics file for CI artifacts. *)
  let wall = Unix.gettimeofday () -. !section_t0 in
  let oc = open_out "BENCH_recover.json" in
  Printf.fprintf oc
    "{\n\
    \  \"smoke\": %b,\n\
    \  \"crashes\": %d,\n\
    \  \"restarts\": %d,\n\
    \  \"checkpoints\": %d,\n\
    \  \"checkpoint_bytes\": %d,\n\
    \  \"messages_replayed\": %d,\n\
    \  \"inbox_rebuilt\": %d,\n\
    \  \"recovery_ns_max\": %d,\n\
    \  \"recovery_ns_total\": %d,\n\
    \  \"delivery_outage_ns\": %d,\n\
    \  \"baseline_max_gap_ns\": %d,\n\
    \  \"lost\": %d,\n\
    \  \"duplicated\": %d,\n\
    \  \"timeline_hash\": \"%016x\",\n\
    \  \"replay_identical\": %b,\n\
    \  \"envelope_hash\": \"%s\",\n\
    \  \"wall_clock_s\": %.3f,\n\
    \  \"events_per_sec\": %.3f,\n\
    \  \"domains\": %d\n\
     }\n"
    smoke report.Services.Recoverstats.crashes
    report.Services.Recoverstats.restarts
    report.Services.Recoverstats.checkpoints
    report.Services.Recoverstats.checkpoint_bytes
    report.Services.Recoverstats.replayed
    report.Services.Recoverstats.inbox_rebuilt recovery_max
    report.Services.Recoverstats.recovery_ns outage baseline lost dup
    (Services.Timeline.hash tl) identical
    (match env_hash with
    | Some h -> Printf.sprintf "%016x" h
    | None -> "")
    wall
    (if wall > 0. then float_of_int !section_events /. wall else 0.)
    domains;
  close_out oc;
  Format.printf "metrics written to BENCH_recover.json@."

(* ------------------------------------------------------------------ *)
(* Open-loop traffic: sharded KV tier, latency percentiles, knee       *)
(* ------------------------------------------------------------------ *)

(* One open-loop run against a fresh tier: [rate] req/s of virtual time
   for [requests] injections, optionally under a fault plan, with forced
   shard moves riding engine timers, and with the distributed collector
   attached. Returns the loadgen handle, the system, and the combined
   audit lines. *)
let traffic_run ?faults ?(moves = []) ?(with_dgc = false) ?(nodes = 8)
    ?(shards = 8) ?(seed = 1) ?(multiactive = false) ?(ma_budget = 4)
    ?(rt_config = System.default_rt_config) ?mix ?key_dist ~rate ~requests () =
  let module Engine = Machine.Engine in
  let machine_config =
    match faults with
    | None -> Engine.default_config
    | Some plan -> { Engine.default_config with Engine.faults = Some plan }
  in
  let kv =
    Apps.Kv_store.create ~shards ~keys_per_shard:16 ~mget_fan:3 ~multiactive
      ~ma_budget ()
  in
  let sys =
    System.boot ~machine_config ~rt_config ~nodes
      ~classes:(Apps.Kv_store.classes kv) ()
  in
  let machine = System.machine sys in
  Apps.Kv_store.spawn kv sys;
  let mig = if moves = [] then None else Some (Migrate.attach sys) in
  let g =
    if with_dgc then Some (Dgc.attach ~interval_ns:150_000 sys) else None
  in
  (match mig with
  | Some m ->
      List.iter
        (fun (time, shard, to_) ->
          Engine.schedule_at machine ~time (fun () ->
              ignore
                (Migrate.move m ~canon:(Apps.Kv_store.shard_addr kv shard)
                   ~to_)))
        moves
  | None -> ());
  let cfg =
    { Traffic.Loadgen.default_config with seed; rate_rps = rate; requests }
  in
  let cfg =
    match mix with None -> cfg | Some mix -> { cfg with Traffic.Loadgen.mix }
  in
  let cfg =
    match key_dist with
    | None -> cfg
    | Some key_dist -> { cfg with Traffic.Loadgen.key_dist }
  in
  let lg = Traffic.Loadgen.launch cfg sys kv in
  System.run sys;
  Option.iter Dgc.settle g;
  note_events sys;
  let audit =
    Traffic.Loadgen.audit lg sys
    @ match g with Some g -> Dgc.audit g | None -> []
  in
  (lg, sys, audit)

let traffic_bench ~smoke ~baseline ~requests_opt ~domains () =
  let module Engine = Machine.Engine in
  header "Open-loop traffic: sharded KV/session tier (8 shards on 8 nodes)";
  section_start ();
  let requests =
    match requests_opt with
    | Some r -> r
    | None -> if smoke then 600 else 4_000
  in
  (* The 1M-request configuration (ROADMAP item 4) is only tractable on
     the domain-sharded engine: the sequential loop's wall clock scales
     with simulated traffic. *)
  if requests > 50_000 && domains <= 1 then begin
    Format.printf
      "traffic: %d requests need the parallel engine — rerun with --domains \
       2 (or more)@."
      requests;
    exit 1
  end;
  (* The tier's measured capacity is ~110k req/s (8 shards x 200
     modelled instructions per op); 60k offered keeps the sustainable
     run well below the knee the sweep then finds. *)
  let base_rate = 60_000 in

  (* Sustainable-rate run: every injected request must complete with a
     finite tail and no errors. With --requests/--domains the run scales
     up on sharded Zipf arrivals (reusing the "traffic.key.zipf"
     decision point) under the domain-sharded engine; the default path
     is byte-identical to previous releases. *)
  let lg, sys, audit =
    if requests_opt <> None || domains > 1 then begin
      let kv = Apps.Kv_store.create ~shards:8 ~keys_per_shard:16 ~mget_fan:3 () in
      let sys = System.boot ~nodes:8 ~classes:(Apps.Kv_store.classes kv) () in
      Apps.Kv_store.spawn kv sys;
      let cfg =
        {
          Traffic.Loadgen.default_config with
          rate_rps = base_rate;
          requests;
          key_dist = Traffic.Loadgen.Zipf 1.0;
        }
      in
      let lg = Traffic.Loadgen.launch_sharded cfg sys kv in
      if domains > 1 then System.run_parallel sys ~domains
      else System.run sys;
      note_events sys;
      (lg, sys, Traffic.Loadgen.audit lg sys)
    end
    else traffic_run ~rate:base_rate ~requests ()
  in
  let r = Traffic.Report.of_run lg sys in
  Format.printf "@[<v>%a@]@." Traffic.Report.pp r;
  let clean = Diagnostics.is_clean (Diagnostics.survey sys) in
  List.iter (fun v -> Format.printf "audit: %s@." v) audit;
  if
    r.Traffic.Report.r_timeouts <> 0
    || r.Traffic.Report.r_errors <> 0
    || audit <> [] || not clean
  then begin
    Format.printf "FAILED sustainable-rate gate@.";
    exit 1
  end;

  (* Composition: the same offered load under 5% drop + duplication, one
     mid-run crash window on a shard-hosting node, two forced shard
     migrations, and the distributed collector riding along. The version
     audit proves exactly-once end to end. *)
  header "Open-loop traffic: 5% drop + crash window + shard moves + DGC";
  let plan =
    Network.Faults.plan ~seed:11 ~drop:0.05 ~duplicate:0.02 ~jitter_ns:1_000
      ~crashes:
        [ { Network.Faults.node = 1; from_ns = 100_000; until_ns = 180_000 } ]
      ()
  in
  let moves = [ (60_000, 1, 5); (200_000, 2, 0) ] in
  let lg_f, sys_f, audit_f =
    traffic_run ~faults:plan ~moves ~with_dgc:true ~seed:3 ~rate:base_rate
      ~requests ()
  in
  let r_f = Traffic.Report.of_run lg_f sys_f in
  Format.printf "@[<v>%a@]@." Traffic.Report.pp r_f;
  let m_f = System.machine sys_f in
  Format.printf
    "faulted run: %d packet(s) dropped, %d in flight at quiescence, audit %d \
     finding(s)@."
    (Engine.packets_dropped m_f)
    (Engine.reliable_in_flight m_f)
    (List.length audit_f);
  List.iter (fun v -> Format.printf "audit: %s@." v) audit_f;
  if
    audit_f <> []
    || Engine.reliable_in_flight m_f <> 0
    || Engine.packets_dropped m_f = 0
    || r_f.Traffic.Report.r_timeouts <> 0
  then begin
    Format.printf "FAILED exactly-once-under-faults gate@.";
    exit 1
  end;

  (* Replay gate: the whole subsystem must be schedule-deterministic —
     record a run of the check workload, replay its choice vector, and
     require bit-identical Timeline hashes. *)
  let wl = Option.get (Check.Workloads.find "traffic") in
  let o = Check.Explore.run_recorded wl ~seed:1 in
  let rp = Check.Explore.replay wl o.Check.Explore.o_trace in
  let replay_identical =
    rp.Check.Explore.rp_identical
    && rp.Check.Explore.rp_outcome.Check.Explore.o_hash
       = o.Check.Explore.o_hash
    && not (Check.Explore.failed o)
  in
  Format.printf "determinism: record %016x replay %016x %s@."
    o.Check.Explore.o_hash rp.Check.Explore.rp_outcome.Check.Explore.o_hash
    (if replay_identical then "ok" else "MISMATCH");
  if not replay_identical then begin
    Format.printf "FAILED traffic replay gate@.";
    exit 1
  end;

  (* Rate sweep: open-loop arrivals keep coming whether or not the
     shards keep up, so past saturation the queues — and the measured
     tail — grow with the run length instead of the service time. The
     knee is the first rate where p99 leaves the sustainable band (3x
     the lowest rate's p99) or goodput falls under 95% of offered. *)
  header "Open-loop traffic: rate sweep (knee where p99 departs)";
  let rates =
    if smoke then [ 50_000; 100_000; 200_000 ]
    else [ 50_000; 80_000; 100_000; 150_000; 200_000; 400_000; 800_000 ]
  in
  let sweep_requests = if smoke then 400 else 2_000 in
  Format.printf "%10s %10s %10s %10s %10s %12s@." "rate(rps)" "p50(ns)"
    "p99(ns)" "p999(ns)" "goodput" "of offered";
  let p99_base = ref 0. in
  let knee = ref 0 in
  List.iter
    (fun rate ->
      let lg, sys, _ = traffic_run ~rate ~requests:sweep_requests () in
      let r = Traffic.Report.of_run lg sys in
      if !p99_base = 0. then p99_base := r.Traffic.Report.r_p99_ns;
      let offered_frac = r.Traffic.Report.r_goodput_rps /. float_of_int rate in
      Format.printf "%10d %10.0f %10.0f %10.0f %10.0f %11.1f%%@." rate
        r.Traffic.Report.r_p50_ns r.Traffic.Report.r_p99_ns
        r.Traffic.Report.r_p999_ns r.Traffic.Report.r_goodput_rps
        (100. *. offered_frac);
      if
        !knee = 0
        && (r.Traffic.Report.r_p99_ns > 3. *. !p99_base
           || offered_frac < 0.95)
      then knee := rate)
    rates;
  (match !knee with
  | 0 -> Format.printf "no knee within the swept range@."
  | k -> Format.printf "knee: p99 departs at %d req/s offered@." k);

  (* Metrics file for CI artifacts + the regression gate. *)
  let fields =
    Traffic.Report.json_fields r
    @ Services.Bench_json.
        [
          ("smoke", Bool smoke);
          ("knee_rps", Int !knee);
          ("replay_identical", Bool replay_identical);
          ( "timeline_hash",
            Str (Printf.sprintf "%016x" o.Check.Explore.o_hash) );
          ("faulted_p99_ns", Int (int_of_float r_f.Traffic.Report.r_p99_ns));
        ]
    @ perf_fields ~domains:(max 1 domains) ()
  in
  Services.Bench_json.write ~path:"BENCH_traffic.json" fields;
  Format.printf "metrics written to BENCH_traffic.json@.";

  (* p99 regression gate against a checked-in baseline. *)
  match baseline with
  | None -> ()
  | Some path -> (
      match Services.Bench_json.read_int_field ~path ~key:"p99_ns" with
      | None ->
          Format.printf "FAILED: baseline %s has no p99_ns field@." path;
          exit 1
      | Some want ->
          let got = int_of_float r.Traffic.Report.r_p99_ns in
          let limit = want + (want / 2) in
          Format.printf
            "p99 regression gate: %d ns vs baseline %d ns (limit 1.5x = %d)@."
            got want limit;
          if got > limit then begin
            Format.printf "FAILED p99 regression gate@.";
            exit 1
          end)

(* ------------------------------------------------------------------ *)
(* Multiactive objects: compatibility-group concurrency in the tier    *)
(* ------------------------------------------------------------------ *)

(* Read-heavy (>= 90% get): the regime where single-writer/multi-reader
   shards pay off — gets overlap, puts/cas still serialize. *)
let ma_mix = { Traffic.Loadgen.m_get = 92; m_put = 5; m_cas = 2; m_mget = 1 }

let multiactive_bench ~smoke ~baseline () =
  let module Engine = Machine.Engine in
  header
    "Multiactive: read-heavy rate sweep, serialized vs annotated shards (8 \
     shards on 8 nodes)";
  section_start ();
  let sweep_requests = if smoke then 400 else 2_000 in
  let rates =
    if smoke then [ 60_000; 120_000; 240_000; 480_000 ]
    else
      [ 60_000; 90_000; 120_000; 180_000; 240_000; 360_000; 480_000; 720_000 ]
  in
  let last_rate = List.nth rates (List.length rates - 1) in
  (* Same knee criterion as the traffic sweep: first rate where p99
     leaves the sustainable band (3x the lowest rate's p99) or goodput
     falls under 95% of offered. *)
  let sweep ~multiactive =
    let p99_base = ref 0. in
    let knee = ref 0 in
    let rows =
      List.map
        (fun rate ->
          let lg, sys, audit =
            traffic_run ~rate ~requests:sweep_requests ~mix:ma_mix
              ~multiactive ~ma_budget:8
              ~rt_config:{ System.default_rt_config with Kernel.ma_cores = 8 }
              ()
          in
          let r = Traffic.Report.of_run lg sys in
          if !p99_base = 0. then p99_base := r.Traffic.Report.r_p99_ns;
          let frac =
            r.Traffic.Report.r_goodput_rps /. float_of_int rate
          in
          if
            !knee = 0
            && (r.Traffic.Report.r_p99_ns > 3. *. !p99_base || frac < 0.95)
          then knee := rate;
          if r.Traffic.Report.r_errors <> 0 || audit <> [] then begin
            Format.printf "FAILED sweep-audit gate at %d req/s@." rate;
            List.iter (fun v -> Format.printf "audit: %s@." v) audit;
            exit 1
          end;
          (rate, r))
        rates
    in
    (rows, !knee)
  in
  let ser_rows, ser_knee = sweep ~multiactive:false in
  let ma_rows, ma_knee = sweep ~multiactive:true in
  Format.printf "%10s | %10s %10s | %10s %10s@." "rate(rps)" "ser p99"
    "ser good%" "ma p99" "ma good%";
  List.iter2
    (fun (rate, (rs : Traffic.Report.t)) (_, (rm : Traffic.Report.t)) ->
      Format.printf "%10d | %10.0f %9.1f%% | %10.0f %9.1f%%@." rate
        rs.Traffic.Report.r_p99_ns
        (100. *. rs.Traffic.Report.r_goodput_rps /. float_of_int rate)
        rm.Traffic.Report.r_p99_ns
        (100. *. rm.Traffic.Report.r_goodput_rps /. float_of_int rate))
    ser_rows ma_rows;
  (* A build that survives the whole sweep has its knee beyond the last
     rate; counting it *at* the last rate only understates the ratio. *)
  let eff k = if k = 0 then last_rate else k in
  let ratio = float_of_int (eff ma_knee) /. float_of_int (eff ser_knee) in
  Format.printf
    "knee: serialized %s, multiactive %s -> ratio %.2fx (gate: >= 1.5x)@."
    (if ser_knee = 0 then Printf.sprintf "beyond %d" last_rate
     else string_of_int ser_knee)
    (if ma_knee = 0 then Printf.sprintf "beyond %d" last_rate
     else string_of_int ma_knee)
    ratio;
  if ratio < 1.5 then begin
    Format.printf "FAILED multiactive knee gate@.";
    exit 1
  end;
  (* Saturated capacity — the goodput ceiling across the sweep — backs
     the knee up with a grid-independent number. *)
  let capacity rows =
    List.fold_left
      (fun acc (_, (r : Traffic.Report.t)) ->
        Float.max acc r.Traffic.Report.r_goodput_rps)
      0. rows
  in
  let cap_ratio = capacity ma_rows /. capacity ser_rows in
  Format.printf
    "saturated capacity: serialized %.0f req/s, multiactive %.0f req/s \
     (%.2fx)@."
    (capacity ser_rows) (capacity ma_rows) cap_ratio;

  (* Overlap anatomy at a backlogged rate with Zipf-skewed keys: one hot
     shard builds a real read backlog, and the load gossip's
     activation-queue depth separates "hot because serialized" from
     "hot because big". The mid-run load report is captured while the
     backlog exists (at quiescence every queue is empty by probe). *)
  header "Multiactive: overlap anatomy on a hot shard (Zipf keys)";
  let nodes = 8 and shards = 8 in
  let kv =
    Apps.Kv_store.create ~shards ~keys_per_shard:16 ~mget_fan:3
      ~multiactive:true ()
  in
  let rt_config =
    { System.default_rt_config with Kernel.gossip_interval_ns = 40_000 }
  in
  let sys =
    System.boot ~rt_config ~nodes ~classes:(Apps.Kv_store.classes kv) ()
  in
  let machine = System.machine sys in
  Apps.Kv_store.spawn kv sys;
  let load = Services.Load.attach sys in
  let mid_report = ref "" in
  Engine.schedule_at machine ~time:600_000 (fun () ->
      mid_report := Services.Load.report load);
  let lg =
    Traffic.Loadgen.launch
      {
        Traffic.Loadgen.default_config with
        rate_rps = 600_000;
        requests = (if smoke then 600 else 1_500);
        mix = ma_mix;
        key_dist = Traffic.Loadgen.Zipf 1.0;
      }
      sys kv
  in
  System.run sys;
  note_events sys;
  let audit = Traffic.Loadgen.audit lg sys in
  let st = System.stats sys in
  let peak = ref 0 and admitted = ref 0 in
  for i = 0 to shards - 1 do
    match System.lookup_obj sys (Apps.Kv_store.shard_addr kv i) with
    | Some o ->
        peak := max !peak (Multiactive.peak_overlap o);
        admitted := !admitted + Multiactive.admitted_total o
    | None -> ()
  done;
  let conflicts = Simcore.Stats.get st "ma.conflict" in
  Format.printf
    "admissions %d (shards %d), queued %d, overlapped starts %d, peak \
     overlap %d, conflicts %d (gate: 0)@."
    (Simcore.Stats.get st "ma.admit")
    !admitted
    (Simcore.Stats.get st "ma.queued")
    (Simcore.Stats.get st "ma.overlap")
    !peak conflicts;
  Format.printf "mid-run load report (gossiped load/activation-queue depth):@.%s"
    !mid_report;
  List.iter (fun v -> Format.printf "audit: %s@." v) audit;
  if conflicts <> 0 || !peak < 2 || audit <> [] then begin
    Format.printf "FAILED overlap-anatomy gate@.";
    exit 1
  end;

  (* Exactly-once under faults with admission control in the path: 5%
     drop + duplication must not double-apply a write or lose one —
     the version audit balances end to end. *)
  header "Multiactive: exactly-once audit under 5% drop + duplication";
  let plan =
    Network.Faults.plan ~seed:11 ~drop:0.05 ~duplicate:0.02 ~jitter_ns:1_000 ()
  in
  let requests = if smoke then 600 else 2_000 in
  let lg_f, sys_f, audit_f =
    traffic_run ~faults:plan ~seed:3 ~multiactive:true ~mix:ma_mix
      ~rate:60_000 ~requests ()
  in
  let r_f = Traffic.Report.of_run lg_f sys_f in
  let m_f = System.machine sys_f in
  Format.printf
    "faulted run: %d/%d completed, %d packet(s) dropped, %d in flight, \
     audit %d finding(s)@."
    r_f.Traffic.Report.r_completed r_f.Traffic.Report.r_injected
    (Engine.packets_dropped m_f)
    (Engine.reliable_in_flight m_f)
    (List.length audit_f);
  List.iter (fun v -> Format.printf "audit: %s@." v) audit_f;
  if
    audit_f <> []
    || Engine.reliable_in_flight m_f <> 0
    || Engine.packets_dropped m_f = 0
    || r_f.Traffic.Report.r_timeouts <> 0
  then begin
    Format.printf "FAILED multiactive exactly-once gate@.";
    exit 1
  end;

  (* Replay gate: admission decisions route through the engine's
     decision points ("ma.admit.defer", "ma.pump.pick"), so a recorded
     run of the multiactive workload must replay bit-identically. *)
  let wl = Option.get (Check.Workloads.find "multiactive") in
  let o = Check.Explore.run_recorded wl ~seed:1 in
  let rp = Check.Explore.replay wl o.Check.Explore.o_trace in
  let replay_identical =
    rp.Check.Explore.rp_identical
    && rp.Check.Explore.rp_outcome.Check.Explore.o_hash
       = o.Check.Explore.o_hash
    && not (Check.Explore.failed o)
  in
  Format.printf "determinism: record %016x replay %016x %s@."
    o.Check.Explore.o_hash rp.Check.Explore.rp_outcome.Check.Explore.o_hash
    (if replay_identical then "ok" else "MISMATCH");
  if not replay_identical then begin
    Format.printf "FAILED multiactive replay gate@.";
    exit 1
  end;

  (* Metrics file for CI artifacts + the regression gate. *)
  Services.Bench_json.write ~path:"BENCH_multiactive.json"
    (Services.Bench_json.
       [
         ("smoke", Bool smoke);
         ("knee_serialized_rps", Int (eff ser_knee));
         ("knee_multiactive_rps", Int (eff ma_knee));
         ("knee_ratio", Float ratio);
         ("capacity_ratio", Float cap_ratio);
         ("peak_overlap", Int !peak);
         ("admissions", Int (Simcore.Stats.get st "ma.admit"));
         ("queued", Int (Simcore.Stats.get st "ma.queued"));
         ("overlapped_starts", Int (Simcore.Stats.get st "ma.overlap"));
         ("conflicts", Int conflicts);
         ("faulted_p99_ns", Int (int_of_float r_f.Traffic.Report.r_p99_ns));
         ("replay_identical", Bool replay_identical);
         ("timeline_hash", Str (Printf.sprintf "%016x" o.Check.Explore.o_hash));
       ]
    @ perf_fields ());
  Format.printf "metrics written to BENCH_multiactive.json@.";

  (* Knee regression gate against a checked-in baseline: the annotated
     build's knee must not move left. *)
  match baseline with
  | None -> ()
  | Some path -> (
      match
        Services.Bench_json.read_int_field ~path ~key:"knee_multiactive_rps"
      with
      | None ->
          Format.printf "FAILED: baseline %s has no knee_multiactive_rps@."
            path;
          exit 1
      | Some want ->
          Format.printf
            "knee regression gate: %d req/s vs baseline %d req/s@."
            (eff ma_knee) want;
          if eff ma_knee < want then begin
            Format.printf "FAILED multiactive knee regression gate@.";
            exit 1
          end)

(* ------------------------------------------------------------------ *)
(* Parallel engine: domain-sharded simulation, conservative lookahead  *)
(* ------------------------------------------------------------------ *)

(* A fresh saturated open-loop workload per measurement (a system is
   single-run): sharded arrivals with Zipf skew on the KV tier — the
   parallel engine's supported envelope (no faults, no migration, no
   gossip), and enough per-node work that domain sharding has
   something to overlap. *)
let parallel_workload ~nodes ~requests ~rate () =
  let kv = Apps.Kv_store.create ~shards:nodes ~keys_per_shard:16 ~mget_fan:3 () in
  let sys = System.boot ~nodes ~classes:(Apps.Kv_store.classes kv) () in
  Apps.Kv_store.spawn kv sys;
  let cfg =
    {
      Traffic.Loadgen.default_config with
      rate_rps = rate;
      requests;
      key_dist = Traffic.Loadgen.Zipf 1.0;
    }
  in
  let lg = Traffic.Loadgen.launch_sharded cfg sys kv in
  (sys, lg)

let parallel_bench ~smoke ~baseline ~domains () =
  header "Parallel engine: nodes sharded across domains, conservative lookahead";
  section_start ();
  let nodes = 8 in
  let requests = if smoke then 2_000 else 10_000 in
  let rate = 400_000 in
  let cores = Domain.recommended_domain_count () in
  (* One measurement: build the workload fresh, run it under [run], wall
     clock it, and collect the run's audit + Timeline hash. *)
  let measure run =
    let sys, lg = parallel_workload ~nodes ~requests ~rate () in
    let tl = Services.Timeline.attach sys in
    let t0 = Unix.gettimeofday () in
    run sys;
    let wall = Unix.gettimeofday () -. t0 in
    note_events sys;
    let audit = Traffic.Loadgen.audit lg sys in
    (wall, Services.Timeline.hash tl, audit,
     Machine.Engine.events_processed (System.machine sys))
  in
  let check_audit label audit =
    if audit <> [] then begin
      List.iter (fun v -> Format.printf "audit(%s): %s@." label v) audit;
      Format.printf "FAILED parallel workload audit (%s)@." label;
      exit 1
    end
  in
  Format.printf "host cores: %d; lookahead: %d ns; %d nodes, %d requests at %d req/s@."
    cores
    (let sys, _ = parallel_workload ~nodes ~requests:1 ~rate () in
     Machine.Engine.lookahead_ns (System.machine sys))
    nodes requests rate;
  let seq_wall, _seq_hash, seq_audit, seq_events =
    measure (fun sys -> System.run sys)
  in
  check_audit "sequential" seq_audit;
  Format.printf "%10s %12s %12s %10s  %s@." "engine" "wall(s)" "events/s"
    "speedup" "timeline hash";
  Format.printf "%10s %12.3f %12.0f %9.2fx@." "seq" seq_wall
    (float_of_int seq_events /. seq_wall)
    1.0;
  let counts = [ 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun d ->
        let wall, hash, audit, events =
          measure (fun sys -> System.run_parallel sys ~domains:d)
        in
        check_audit (Printf.sprintf "domains=%d" d) audit;
        Format.printf "%8s %2d %12.3f %12.0f %9.2fx  %016x@." "domains" d wall
          (float_of_int events /. wall)
          (seq_wall /. wall) hash;
        (d, wall, hash, events))
      counts
  in
  (* Determinism gate (unconditional, any host): every domain count must
     produce the same canonical observation stream. *)
  let _, _, h1, _ = List.hd rows in
  List.iter
    (fun (d, _, h, _) ->
      if h <> h1 then begin
        Format.printf
          "FAILED parallel determinism gate: hash %016x at %d domain(s) <> \
           %016x at 1@."
          h d h1;
        exit 1
      end)
    rows;
  Format.printf "determinism: identical Timeline hash at 1/2/4/8 domains@.";
  (* Speedup gate — only meaningful when the host actually has the
     cores; a 1- or 2-core CI runner reports the curve but cannot fail
     it. *)
  let wall_at d = match List.find_opt (fun (d', _, _, _) -> d' = d) rows with
    | Some (_, w, _, _) -> w
    | None -> nan
  in
  let speedup_4 = seq_wall /. wall_at 4 in
  if cores >= 4 then begin
    Format.printf "speedup at 4 domains: %.2fx (gate: >= 1.5x)@." speedup_4;
    if speedup_4 < 1.5 then begin
      Format.printf "FAILED parallel speedup gate@.";
      exit 1
    end
  end
  else
    Format.printf
      "speedup at 4 domains: %.2fx (gate skipped: host has %d core(s))@."
      speedup_4 cores;
  let total_events = List.fold_left (fun a (_, _, _, e) -> a + e) 0 rows in
  (* Per-feature envelope rows: the hostile-network constructs (fault
     plans, coalescing, crash recovery) under the same determinism
     regime, so CI trends their hashes alongside the clean KV
     workload's. Domain-count determinism does not depend on host
     cores, so these rows always run. *)
  let feat_domains = if domains > 1 then domains else 4 in
  let env_rows =
    List.map
      (fun feature ->
        let h, fields = envelope_section ~feature ~smoke ~domains:feat_domains () in
        (envelope_feature_name feature, h, fields))
      [ Env_faults; Env_coalesce; Env_recover ]
  in
  let env_fields = List.concat_map (fun (_, _, f) -> f) env_rows in
  Services.Bench_json.write ~path:"BENCH_parallel.json"
    (Services.Bench_json.
       [
         ("smoke", Bool smoke);
         ("config_requests", Int requests);
         ("cores", Int cores);
         ("seq_wall_s", Float seq_wall);
         ("wall_1_s", Float (wall_at 1));
         ("wall_2_s", Float (wall_at 2));
         ("wall_4_s", Float (wall_at 4));
         ("wall_8_s", Float (wall_at 8));
         ("speedup_4", Float speedup_4);
         ("speedup_gated", Bool (cores >= 4));
         ("timeline_hash", Str (Printf.sprintf "%016x" h1));
         ("timeline_hash_int", Int h1);
         ("total_events", Int total_events);
       ]
    @ env_fields @ perf_fields ~domains:4 ());
  Format.printf "metrics written to BENCH_parallel.json@.";
  (* Baseline gate: the canonical observation stream is a pure function
     of the workload, so against a baseline recorded at the same
     request count the hash must match exactly. *)
  match baseline with
  | None -> ()
  | Some path -> (
      match Services.Bench_json.read_int_field ~path ~key:"config_requests" with
      | Some want_req when want_req <> requests ->
          Format.printf
            "baseline %s was recorded at %d request(s), this run used %d — \
             hash gate skipped@."
            path want_req requests
      | _ -> (
          match
            Services.Bench_json.read_int_field ~path ~key:"timeline_hash_int"
          with
          | None ->
              Format.printf "FAILED: baseline %s has no timeline_hash_int@."
                path;
              exit 1
          | Some want ->
              Format.printf
                "baseline hash gate: %016x vs baseline %016x %s@." h1 want
                (if h1 = want then "(ok)" else "(MISMATCH)");
              if h1 <> want then begin
                Format.printf "FAILED parallel baseline hash gate@.";
                exit 1
              end;
              (* Per-feature hash gates, against baselines recorded at
                 the same scale. Absent keys are reported, not failed,
                 so an older baseline file stays usable. *)
              List.iter
                (fun (nm, h, _) ->
                  match
                    Services.Bench_json.read_int_field ~path
                      ~key:(nm ^ "_hash_int")
                  with
                  | None ->
                      Format.printf
                        "baseline has no %s_hash_int — feature hash gate \
                         skipped@."
                        nm
                  | Some want_f ->
                      Format.printf
                        "baseline %s hash gate: %016x vs baseline %016x %s@."
                        nm h want_f
                        (if h = want_f then "(ok)" else "(MISMATCH)");
                      if h <> want_f then begin
                        Format.printf
                          "FAILED parallel baseline feature hash gate (%s)@."
                          nm;
                        exit 1
                      end)
                env_rows))

(* ------------------------------------------------------------------ *)
(* Schedule explorer: sweep perturbed schedules, shrink failures       *)
(* ------------------------------------------------------------------ *)

let explore ~smoke ~schedules ~seed ~workload ~replay ~out_dir () =
  header "Schedule explorer";
  match replay with
  | Some path ->
      let r = Check.Explore.replay_file path in
      let o = r.Check.Explore.rp_outcome in
      Format.printf "workload %s, %d choice(s)@." o.Check.Explore.o_workload
        (Array.length o.Check.Explore.o_trace);
      List.iter
        (fun (p, d) -> Format.printf "violation: %s: %s@." p d)
        o.Check.Explore.o_violations;
      (match o.Check.Explore.o_crash with
      | Some e -> Format.printf "crash: %s@." e
      | None -> ());
      Format.printf "replay hashes: %016x / %016x@." o.Check.Explore.o_hash
        r.Check.Explore.rp_second_hash;
      if not r.Check.Explore.rp_identical then begin
        Format.printf "FAILED: replay is not bit-identical@.";
        exit 1
      end;
      Format.printf "replay bit-identical: yes@.";
      if Check.Explore.failed o then
        Format.printf "schedule still failing (as a reproducer should)@."
      else Format.printf "schedule passes: the pinned bug stays fixed@."
  | None ->
      let workloads =
        match workload with
        | None -> Check.Workloads.all
        | Some n -> (
            match Check.Workloads.find n with
            | Some w -> [ w ]
            | None ->
                Format.printf "unknown workload %s@." n;
                exit 2)
      in
      let schedules =
        match schedules with Some n -> n | None -> if smoke then 6 else 40
      in
      (* Determinism gate first: a recorded schedule must replay
         bit-identically on every workload. *)
      List.iter
        (fun w ->
          let o = Check.Explore.run_recorded w ~seed in
          let r = Check.Explore.replay w o.Check.Explore.o_trace in
          let ident =
            r.Check.Explore.rp_identical
            && (Option.is_some o.Check.Explore.o_crash
               || r.Check.Explore.rp_outcome.Check.Explore.o_hash
                  = o.Check.Explore.o_hash)
          in
          Format.printf "%-10s determinism: record %016x replay %016x %s@."
            w.Check.Workloads.w_name o.Check.Explore.o_hash
            r.Check.Explore.rp_outcome.Check.Explore.o_hash
            (if ident then "ok" else "MISMATCH");
          if not ident then begin
            Format.printf "FAILED: replay of a recorded schedule diverged@.";
            exit 1
          end)
        workloads;
      let out_dir = Option.value out_dir ~default:"." in
      let summary =
        Check.Explore.sweep ~out_dir
          ~log:(fun s -> Format.printf "  %s@." s)
          ~workloads ~schedules ~seed ()
      in
      Format.printf "%d run(s) across %d workload(s): %d failing schedule(s)@."
        summary.Check.Explore.runs (List.length workloads)
        (List.length summary.Check.Explore.failures);
      if summary.Check.Explore.failures <> [] then begin
        List.iter
          (fun f ->
            let o = f.Check.Explore.f_outcome in
            Format.printf "FAIL %s (seed %s): %s@."
              o.Check.Explore.o_workload
              (match o.Check.Explore.o_seed with
              | Some s -> string_of_int s
              | None -> "-")
              (match
                 (o.Check.Explore.o_violations, o.Check.Explore.o_crash)
               with
              | (p, d) :: _, _ -> p ^ ": " ^ d
              | [], Some e -> "crash: " ^ e
              | [], None -> "?"))
          summary.Check.Explore.failures;
        exit 1
      end

(* ------------------------------------------------------------------ *)
(* Bechamel: wall-clock cost of the simulator itself                   *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  header "Bechamel: simulator wall-clock microbenchmarks";
  let open Bechamel in
  let open Toolkit in
  let nqueens_small ~rt_config () =
    ignore (Apps.Nqueens_par.run ~rt_config ~nodes:4 ~n:6 ())
  in
  let tests =
    Test.make_grouped ~name:"repro"
      [
        Test.make ~name:"table1-intra-ops"
          (Staged.stage (fun () -> ignore (Apps.Microbench.measure ())));
        Test.make ~name:"table2-dormant-dispatch"
          (Staged.stage (fun () -> ignore (Apps.Ring.run ~nodes:2 ~laps:8 ())));
        Test.make ~name:"table3-now-roundtrip"
          (Staged.stage (fun () -> ignore (Apps.Fib.run ~nodes:2 ~n:6 ())));
        Test.make ~name:"table4-fig5-nqueens"
          (Staged.stage (nqueens_small ~rt_config:System.default_rt_config));
        Test.make ~name:"fig6-nqueens-naive"
          (Staged.stage (nqueens_small ~rt_config:System.naive_rt_config));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "%-28s %12.0f ns/run@." name est
      | Some _ | None -> Format.printf "%-28s (no estimate)@." name)
    rows

(* ------------------------------------------------------------------ *)

(* Pull "[key] [value]" option pairs out of the raw argument list,
   returning the value and the remaining arguments. *)
let extract_opt key args =
  let rec go = function
    | [] -> (None, [])
    | k :: v :: rest when k = key -> (Some v, rest)
    | x :: rest ->
        let r, rest' = go rest in
        (r, x :: rest')
  in
  go args

let () =
  Format.set_margin 200;
  let args = Array.to_list Sys.argv |> List.tl in
  let schedules, args = extract_opt "--schedules" args in
  let seed, args = extract_opt "--seed" args in
  let workload, args = extract_opt "--workload" args in
  let replay, args = extract_opt "--replay" args in
  let out_dir, args = extract_opt "--out" args in
  let baseline, args = extract_opt "--baseline" args in
  let requests_opt, args = extract_opt "--requests" args in
  let domains_opt, args = extract_opt "--domains" args in
  let requests_opt = Option.map int_of_string requests_opt in
  let domains = match domains_opt with Some d -> int_of_string d | None -> 1 in
  let full = List.mem "--full" args in
  let smoke = List.mem "--smoke" args in
  let sections = List.filter (fun a -> a <> "--full" && a <> "--smoke") args in
  let sections = if sections = [] then [ "all" ] else sections in
  let want s = List.mem s sections || List.mem "all" sections in
  (* The explorer is a checker, not a benchmark: it only runs when asked
     for by name (never under "all"). *)
  if List.mem "explore" sections then
    explore ~smoke
      ~schedules:(Option.map int_of_string schedules)
      ~seed:(match seed with Some s -> int_of_string s | None -> 1)
      ~workload ~replay ~out_dir ();
  if want "table1" then table1 ();
  if want "table2" then table2 ();
  if want "table3" then table3 ();
  if want "table4" then table4 ~full ();
  if want "fig5" then fig5 ~full ();
  if want "fig6" then fig6 ~full ();
  if want "ablations" then ablations ();
  if want "faults" then faults ~smoke ~domains ();
  if want "migrate" then migrate_bench ~smoke ();
  if want "dgc" then dgc_bench ~smoke ();
  if want "coalesce" then coalesce_bench ~smoke ~domains ();
  if want "recover" then recover_bench ~smoke ~domains ();
  if want "traffic" then traffic_bench ~smoke ~baseline ~requests_opt ~domains ();
  if want "multiactive" then multiactive_bench ~smoke ~baseline ();
  if want "parallel" then parallel_bench ~smoke ~baseline ~domains ();
  if want "bechamel" then bechamel ();
  Format.printf "@."
